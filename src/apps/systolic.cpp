#include "apps/systolic.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/rng.hpp"

namespace hpb::apps {
namespace {

using space::Parameter;

std::vector<double> pow2_levels(std::size_t levels) {
  std::vector<double> v;
  v.reserve(levels);
  for (std::size_t i = 0; i < levels; ++i) {
    v.push_back(static_cast<double>(1ULL << i));
  }
  return v;
}

}  // namespace

SystolicWorkload SystolicWorkload::small() {
  SystolicWorkload w;
  w.m = w.n = w.k = 32;
  w.tile_levels = 3;  // part_* ∈ {1, 2, 4}
  w.l2_levels = 3;
  w.latency_levels = 3;
  w.simd_levels = 3;
  w.pack_levels = 2;
  w.pe_budget = 24.0;
  w.bram_budget = 64.0;
  w.bandwidth = 2.0;
  return w;
}

space::SpacePtr make_systolic_space(const SystolicWorkload& w) {
  HPB_REQUIRE(w.tile_levels >= 2 && w.l2_levels >= 2 &&
                  w.latency_levels >= 2 && w.simd_levels >= 2 &&
                  w.pack_levels >= 1,
              "make_systolic_space: degenerate knob granularity");
  HPB_REQUIRE((1ULL << (w.tile_levels - 1)) <= std::min({w.m, w.n, w.k}),
              "make_systolic_space: largest tile exceeds the GEMM dims");
  auto s = std::make_shared<space::ParameterSpace>();
  s->add(Parameter::categorical("space_time",
                                {"row", "col", "grid", "grid_l2"}));
  for (const char* name : {"part_i", "part_j", "part_k"}) {
    s->add(Parameter::categorical_numeric(name, pow2_levels(w.tile_levels)));
  }
  const std::vector<std::string> l2_only = {"grid_l2"};
  const std::vector<std::string> grids = {"grid", "grid_l2"};
  const std::vector<std::string> vectorized = {"row", "grid", "grid_l2"};
  for (const char* name : {"part2_i", "part2_j", "part2_k"}) {
    s->add_conditional(
        Parameter::categorical_numeric(name, pow2_levels(w.l2_levels)),
        "space_time", l2_only);
  }
  for (const char* name : {"lat_i", "lat_j"}) {
    s->add_conditional(
        Parameter::categorical_numeric(name, pow2_levels(w.latency_levels)),
        "space_time", grids);
  }
  s->add_conditional(
      Parameter::categorical_numeric("simd", pow2_levels(w.simd_levels)),
      "space_time", vectorized);
  s->add(Parameter::categorical_numeric("pack_in", pow2_levels(w.pack_levels)));
  s->add(
      Parameter::categorical_numeric("pack_out", pow2_levels(w.pack_levels)));
  // L2 tiles nest inside their L1 counterparts; latency-hiding and SIMD
  // factors tile the L1 tile they unroll. All vacuous when inactive.
  s->add_divisibility("part2_i", "part_i");
  s->add_divisibility("part2_j", "part_j");
  s->add_divisibility("part2_k", "part_k");
  s->add_divisibility("lat_i", "part_i");
  s->add_divisibility("lat_j", "part_j");
  s->add_divisibility("simd", "part_k");
  return s;
}

SystolicObjective::SystolicObjective(SystolicWorkload workload)
    : workload_(workload), space_(make_systolic_space(workload)) {
  const space::ParameterSpace& s = *space_;
  space_time_ = s.index_of("space_time");
  part_[0] = s.index_of("part_i");
  part_[1] = s.index_of("part_j");
  part_[2] = s.index_of("part_k");
  part2_[0] = s.index_of("part2_i");
  part2_[1] = s.index_of("part2_j");
  part2_[2] = s.index_of("part2_k");
  lat_[0] = s.index_of("lat_i");
  lat_[1] = s.index_of("lat_j");
  simd_ = s.index_of("simd");
  pack_in_ = s.index_of("pack_in");
  pack_out_ = s.index_of("pack_out");
}

double SystolicObjective::cost(const space::Configuration& c) const {
  const space::ParameterSpace& s = *space_;
  auto value = [&](std::size_t i) {
    return s.param(i).level_value(c.level(i));
  };
  auto active_value = [&](std::size_t i, double fallback) {
    return s.is_active(c, i) ? value(i) : fallback;
  };
  const std::size_t mapping = c.level(space_time_);  // row/col/grid/grid_l2
  const double ti = value(part_[0]);
  const double tj = value(part_[1]);
  const double tk = value(part_[2]);
  const double t2i = active_value(part2_[0], ti);
  const double t2j = active_value(part2_[1], tj);
  const double t2k = active_value(part2_[2], tk);
  const double li = active_value(lat_[0], 1.0);
  const double lj = active_value(lat_[1], 1.0);
  const double simd = active_value(simd_, 1.0);
  const double pack_in = value(pack_in_);
  const double pack_out = value(pack_out_);

  const auto m = static_cast<double>(workload_.m);
  const auto n = static_cast<double>(workload_.n);
  const auto k = static_cast<double>(workload_.k);
  const double macs = m * n * k;

  // PE array shape per mapping; latency-hiding folds l_i × l_j iterations
  // into each PE, shrinking the array but amortizing accumulation bubbles.
  double pes = 1.0;
  double stall = 1.0;
  switch (mapping) {
    case 0:  // row: 1-D array along i, k-dimension pipelined
      pes = ti;
      stall = 1.12;
      break;
    case 1:  // col: 1-D array along j
      pes = tj;
      stall = 1.12;
      break;
    default:  // grid / grid_l2: 2-D array, interleaved accumulation
      pes = (ti / li) * (tj / lj);
      stall = 1.0 + 4.0 / (li * lj + 3.0);  // no hiding → 2.0x, deep → 1.0x
      break;
  }
  const double lanes = pes * simd;
  const double simd_eff = std::pow(simd, 0.92);  // drain/alignment losses
  const double compute_cycles = macs / (pes * simd_eff) * stall;

  // DRAM roofline: A streamed once per j-tile strip, B once per i-tile
  // strip, C written back (and drained) once; packing widens each beat.
  const double traffic_in = m * k * (n / tj) + k * n * (m / ti);
  const double traffic_out = 2.0 * m * n;
  const double mem_cycles =
      traffic_in / (workload_.bandwidth * std::pow(pack_in, 0.85)) +
      traffic_out / (workload_.bandwidth * std::pow(pack_out, 0.85));

  // Per-tile launch overhead favors coarse tiling up to the budgets.
  const double rounds = (m / ti) * (n / tj) * (k / tk);
  double cycles = std::max(compute_cycles, mem_cycles) + 64.0 * rounds;

  // Resource feasibility: smooth super-linear penalties keep the surface
  // informative beyond the budget instead of cliffing to infinity. grid_l2
  // double-buffers only the (smaller) L2 tiles, which is exactly what makes
  // the extra tiling level worth its control overhead on large tiles.
  const double buffer_words =
      mapping == 3
          ? 2.0 * (t2i * t2k + t2k * t2j + t2i * t2j) + ti * tj
          : 2.0 * (ti * tk + tk * tj + ti * tj);
  if (mapping == 3) {
    cycles *= 1.03;  // deeper loop nest control
  }
  const double pe_over = lanes / workload_.pe_budget;
  if (pe_over > 1.0) {
    cycles *= 1.0 + 4.0 * (pe_over - 1.0);
  }
  const double bram_over = buffer_words / workload_.bram_budget;
  if (bram_over > 1.0) {
    cycles *= 1.0 + 4.0 * (bram_over - 1.0);
  }

  // Frozen measurement jitter keyed on the configuration's ordinal.
  const double z =
      hash_to_normal(hash_combine(workload_.noise_seed, s.ordinal_of(c)));
  return cycles / workload_.clock_hz * std::exp(workload_.noise_sigma * z);
}

tabular::TabularObjective make_systolic_small() {
  auto objective =
      std::make_shared<SystolicObjective>(SystolicWorkload::small());
  return tabular::TabularObjective::from_function(
      "systolic_small", objective->space_ptr(),
      [objective](const space::Configuration& c) {
        return objective->cost(c);
      });
}

}  // namespace hpb::apps
