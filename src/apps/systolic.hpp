// Systolic-array GEMM accelerator design space, modeled on the AutoSA pass
// knobs: a space_time mapping choice gates two levels of array-partition
// tile triples (with divisibility constraints between them), latency-hiding
// tile factors, and a SIMD vectorization factor; host<->device data packing
// widths ride along unconditionally. The first genuinely *tree-structured*
// app in the suite — the "T" in TPE finally has something to chew on:
//
//   space_time ∈ {row, col, grid, grid_l2}
//     part_i/j/k            L1 array-partition tile triple (always active)
//     part2_i/j/k           L2 tiles, active only under grid_l2; each must
//                           divide its L1 counterpart
//     lat_i/lat_j           latency-hiding factors, active under grid and
//                           grid_l2; each must divide its L1 tile
//     simd                  vector lanes, active under row/grid/grid_l2;
//                           must divide part_k
//   pack_in/pack_out        DRAM packing widths (unconditional)
//
// The objective is a deterministic analytic latency model (compute/memory
// roofline with PE and BRAM budget penalties) with frozen hash noise — the
// full-size space has a raw cross product ~2^34, far beyond enumeration,
// while SystolicWorkload::small() shrinks every knob so the valid set
// enumerates into a registry dataset ("systolic_small").
#pragma once

#include <cstdint>
#include <string>

#include "space/parameter_space.hpp"
#include "tabular/objective.hpp"
#include "tabular/tabular_objective.hpp"

namespace hpb::apps {

/// Problem size and knob granularity of one systolic design space. Tile and
/// factor levels are powers of two: `tile_levels = 10` means
/// part_* ∈ {1, 2, ..., 512}.
struct SystolicWorkload {
  std::size_t m = 1024;  // GEMM dimensions C[m×n] = A[m×k] · B[k×n]
  std::size_t n = 1024;
  std::size_t k = 1024;
  std::size_t tile_levels = 10;    // part_i/j/k levels (powers of two)
  std::size_t l2_levels = 10;      // part2_i/j/k levels
  std::size_t latency_levels = 7;  // lat_i/lat_j levels
  std::size_t simd_levels = 5;     // simd levels
  std::size_t pack_levels = 4;     // pack_in/pack_out levels
  double pe_budget = 4096.0;       // MAC lanes that fit the fabric
  double bram_budget = 262144.0;   // on-chip buffer words
  double bandwidth = 64.0;         // DRAM words per cycle (unpacked)
  double clock_hz = 2.0e8;
  double noise_sigma = 0.03;       // frozen measurement jitter (lognormal)
  std::uint64_t noise_seed = 0x53595354a77a5a11ULL;

  /// The full-size space: raw cross product 4·10^6·49·5·16 ≈ 2^33.9.
  [[nodiscard]] static SystolicWorkload full() { return {}; }

  /// Shrunk knobs (tiles ≤ 4, 32^3 GEMM) whose valid set enumerates into
  /// the "systolic_small" registry dataset.
  [[nodiscard]] static SystolicWorkload small();
};

/// The conditional, constrained parameter space described above.
[[nodiscard]] space::SpacePtr make_systolic_space(const SystolicWorkload& w);

/// Deterministic analytic latency (seconds per GEMM) over the systolic
/// space. Cheap enough to stream-evaluate millions of candidates.
class SystolicObjective final : public tabular::Objective {
 public:
  explicit SystolicObjective(
      SystolicWorkload workload = SystolicWorkload::full());

  [[nodiscard]] const space::ParameterSpace& space() const override {
    return *space_;
  }
  [[nodiscard]] double evaluate(const space::Configuration& c) override {
    return cost(c);
  }
  [[nodiscard]] std::string name() const override { return "systolic"; }

  [[nodiscard]] space::SpacePtr space_ptr() const noexcept { return space_; }
  [[nodiscard]] const SystolicWorkload& workload() const noexcept {
    return workload_;
  }

  /// The latency model itself (const: evaluate() adds nothing on top).
  [[nodiscard]] double cost(const space::Configuration& c) const;

 private:
  SystolicWorkload workload_;
  space::SpacePtr space_;
  // Cached parameter indices (resolved once; the model is a hot loop).
  std::size_t space_time_, part_[3], part2_[3], lat_[2], simd_, pack_in_,
      pack_out_;
};

/// Enumerated small-instance dataset for apps::registry (CLI tune/resume,
/// wire-protocol sessions, and the shootout benches all route through it).
[[nodiscard]] tabular::TabularObjective make_systolic_small();

}  // namespace hpb::apps
