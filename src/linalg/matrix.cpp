#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace hpb::linalg {

Vector matvec(const Matrix& a, std::span<const double> x) {
  HPB_REQUIRE(a.cols() == x.size(), "matvec: dimension mismatch");
  Vector y(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    y[r] = dot(a.row(r), x);
  }
  return y;
}

Vector matvec_transposed(const Matrix& a, std::span<const double> x) {
  HPB_REQUIRE(a.rows() == x.size(), "matvec_transposed: dimension mismatch");
  Vector y(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    axpy(x[r], a.row(r), y);
  }
  return y;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  HPB_REQUIRE(a.cols() == b.rows(), "matmul: dimension mismatch");
  Matrix c(a.rows(), b.cols(), 0.0);
  // i-k-j loop order keeps the inner loop contiguous over both B and C rows.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) {
        continue;
      }
      axpy(aik, b.row(k), c.row(i));
    }
  }
  return c;
}

double dot(std::span<const double> a, std::span<const double> b) {
  HPB_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  HPB_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

double norm2(std::span<const double> v) { return std::sqrt(dot(v, v)); }

Matrix cholesky(const Matrix& a) {
  HPB_REQUIRE(a.rows() == a.cols(), "cholesky: matrix must be square");
  const std::size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) {
      diag -= l(j, k) * l(j, k);
    }
    HPB_REQUIRE(diag > 0.0, "cholesky: matrix is not positive definite");
    l(j, j) = std::sqrt(diag);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        acc -= l(i, k) * l(j, k);
      }
      l(i, j) = acc / l(j, j);
    }
  }
  return l;
}

Vector solve_lower(const Matrix& l, std::span<const double> b) {
  HPB_REQUIRE(l.rows() == l.cols() && l.rows() == b.size(),
              "solve_lower: dimension mismatch");
  const std::size_t n = b.size();
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) {
      acc -= l(i, k) * y[k];
    }
    y[i] = acc / l(i, i);
  }
  return y;
}

Vector solve_lower_transposed(const Matrix& l, std::span<const double> b) {
  HPB_REQUIRE(l.rows() == l.cols() && l.rows() == b.size(),
              "solve_lower_transposed: dimension mismatch");
  const std::size_t n = b.size();
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) {
      acc -= l(k, ii) * x[k];
    }
    x[ii] = acc / l(ii, ii);
  }
  return x;
}

Vector cholesky_solve(const Matrix& l, std::span<const double> b) {
  const Vector y = solve_lower(l, b);
  return solve_lower_transposed(l, y);
}

double cholesky_logdet(const Matrix& l) {
  double acc = 0.0;
  for (std::size_t i = 0; i < l.rows(); ++i) {
    acc += std::log(l(i, i));
  }
  return 2.0 * acc;
}

}  // namespace hpb::linalg
