// Minimal dense linear algebra: row-major Matrix, vector helpers, and the
// Cholesky machinery needed by the Gaussian-process baseline and the MLP.
//
// This is deliberately small and allocation-honest rather than a BLAS
// replacement: matrices in this project are at most a few hundred rows
// (GP history) or a few hundred units (PerfNet layers).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace hpb::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<double> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const double> flat() const noexcept { return data_; }

  void fill(double value) { std::fill(data_.begin(), data_.end(), value); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = A x  (A: m×n, x: n, result: m).
[[nodiscard]] Vector matvec(const Matrix& a, std::span<const double> x);

/// y = Aᵀ x  (A: m×n, x: m, result: n).
[[nodiscard]] Vector matvec_transposed(const Matrix& a,
                                       std::span<const double> x);

/// C = A B.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// Dot product.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// In-place y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// Euclidean norm.
[[nodiscard]] double norm2(std::span<const double> v);

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
/// Throws hpb::Error if the matrix is not (numerically) SPD.
[[nodiscard]] Matrix cholesky(const Matrix& a);

/// Solve L y = b with L lower triangular (forward substitution).
[[nodiscard]] Vector solve_lower(const Matrix& l, std::span<const double> b);

/// Solve Lᵀ x = b with L lower triangular (back substitution).
[[nodiscard]] Vector solve_lower_transposed(const Matrix& l,
                                            std::span<const double> b);

/// Solve A x = b for SPD A via its Cholesky factor L: x = L⁻ᵀ L⁻¹ b.
[[nodiscard]] Vector cholesky_solve(const Matrix& l, std::span<const double> b);

/// log determinant of SPD A from its Cholesky factor: 2 Σ log L_ii.
[[nodiscard]] double cholesky_logdet(const Matrix& l);

}  // namespace hpb::linalg
