#include "obs/trace.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/error.hpp"
#include "obs/json_util.hpp"

namespace hpb::obs {
namespace {

/// Flush threshold: spans are buffered (tracing must not add an fsync per
/// evaluation to the hot path) and written out in chunks.
constexpr std::size_t kFlushBytes = 1 << 16;

std::string errno_text() { return std::strerror(errno); }

void append_attr(std::string& line, const TraceAttr& attr) {
  line += '"';
  line += json_escape(attr.key);
  line += "\":";
  switch (attr.kind) {
    case TraceAttr::Kind::kString:
      line += '"';
      line += json_escape(attr.string_value);
      line += '"';
      break;
    case TraceAttr::Kind::kDouble:
      line += json_double(attr.double_value);
      break;
    case TraceAttr::Kind::kUint:
      line += std::to_string(attr.uint_value);
      break;
  }
}

}  // namespace

std::uint64_t max_trace_id(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return 0;
  }
  std::uint64_t max_id = 0;
  std::string line;
  while (std::getline(in, line)) {
    const std::string_view needle = "\"id\":";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos) {
      continue;
    }
    std::uint64_t id = 0;
    const char* begin = line.data() + at + needle.size();
    const char* end = line.data() + line.size();
    if (std::from_chars(begin, end, id).ec == std::errc{}) {
      max_id = std::max(max_id, id);
    }
  }
  return max_id;
}

JsonlTraceSink::JsonlTraceSink(std::string path, int fd, std::uint64_t first_id)
    : path_(std::move(path)), fd_(fd), next_id_(first_id) {}

JsonlTraceSink::JsonlTraceSink(JsonlTraceSink&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_.load(std::memory_order_relaxed)),
      buffer_(std::move(other.buffer_)) {}

JsonlTraceSink::~JsonlTraceSink() {
  if (fd_ >= 0) {
    try {
      flush();
    } catch (const Error&) {
      // Destructors must not throw; a torn trace tail is survivable.
    }
    ::close(fd_);
  }
}

JsonlTraceSink JsonlTraceSink::create(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  HPB_REQUIRE(fd >= 0, "trace open '" + path + "': " + errno_text());
  return JsonlTraceSink(path, fd, 1);
}

JsonlTraceSink JsonlTraceSink::append_to(const std::string& path) {
  const std::uint64_t last = max_trace_id(path);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  HPB_REQUIRE(fd >= 0, "trace open '" + path + "': " + errno_text());
  return JsonlTraceSink(path, fd, last + 1);
}

void JsonlTraceSink::emit(const TraceEvent& event) {
  std::string line;
  line.reserve(128);
  line += "{\"id\":";
  line += std::to_string(event.id);
  if (event.parent != 0) {
    line += ",\"parent\":";
    line += std::to_string(event.parent);
  }
  line += ",\"name\":\"";
  line += json_escape(event.name);
  line += "\",\"ts\":";
  line += std::to_string(event.start_ns);
  line += ",\"dur\":";
  line += std::to_string(event.end_ns - event.start_ns);
  if (!event.attrs.empty()) {
    line += ",\"attrs\":{";
    for (std::size_t i = 0; i < event.attrs.size(); ++i) {
      if (i > 0) {
        line += ',';
      }
      append_attr(line, event.attrs[i]);
    }
    line += '}';
  }
  line += "}\n";

  const std::lock_guard<std::mutex> lock(mutex_);
  buffer_ += line;
  if (buffer_.size() >= kFlushBytes) {
    flush_locked();
  }
}

void JsonlTraceSink::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  HPB_REQUIRE(fd_ >= 0, "JsonlTraceSink: sink was moved from or closed");
  flush_locked();
}

void JsonlTraceSink::flush_locked() {
  std::string pending;
  pending.swap(buffer_);
  std::string_view rest(pending);
  while (!rest.empty()) {
    const ssize_t n = ::write(fd_, rest.data(), rest.size());
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      HPB_REQUIRE(false, "trace write '" + path_ + "': " + errno_text());
    }
    rest.remove_prefix(static_cast<std::size_t>(n));
  }
}

}  // namespace hpb::obs
