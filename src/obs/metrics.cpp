#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <sstream>

#include "common/error.hpp"
#include "common/fsio.hpp"
#include "obs/json_util.hpp"

namespace hpb::obs {

void Gauge::set(double v) noexcept {
  bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
}

double Gauge::value() const noexcept {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()) {
  HPB_REQUIRE(!bounds_.empty(), "Histogram: bucket bounds must be non-empty");
  HPB_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                  std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                      bounds_.end(),
              "Histogram: bucket bounds must be strictly increasing");
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::record(double sample) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // size() == overflow
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Lock-free double accumulation: CAS on the bit pattern.
  std::uint64_t expected = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    const double updated = std::bit_cast<double>(expected) + sample;
    if (sum_bits_.compare_exchange_weak(
            expected, std::bit_cast<std::uint64_t>(updated),
            std::memory_order_relaxed, std::memory_order_relaxed)) {
      return;
    }
  }
}

double Histogram::sum() const noexcept {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

std::span<const double> default_latency_buckets_ms() {
  static constexpr std::array<double, 14> kBuckets = {
      0.01, 0.05, 0.1, 0.5,  1.0,   5.0,   10.0,
      50.0, 100., 500., 1e3, 5e3,   1e4,   6e4};
  return kBuckets;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Instrument& slot = instruments_[name];
  HPB_REQUIRE(!slot.gauge && !slot.histogram,
              "MetricsRegistry: '" + name + "' already registered with a "
              "different kind");
  if (!slot.counter) {
    slot.counter = std::make_unique<Counter>();
  }
  return *slot.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Instrument& slot = instruments_[name];
  HPB_REQUIRE(!slot.counter && !slot.histogram,
              "MetricsRegistry: '" + name + "' already registered with a "
              "different kind");
  if (!slot.gauge) {
    slot.gauge = std::make_unique<Gauge>();
  }
  return *slot.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::span<const double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Instrument& slot = instruments_[name];
  HPB_REQUIRE(!slot.counter && !slot.gauge,
              "MetricsRegistry: '" + name + "' already registered with a "
              "different kind");
  if (!slot.histogram) {
    slot.histogram = std::make_unique<Histogram>(upper_bounds);
  }
  return *slot.histogram;
}

std::string MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  out << "{\n";
  bool first = true;
  for (const auto& [name, slot] : instruments_) {
    if (!first) {
      out << ",\n";
    }
    first = false;
    out << "  \"" << name << "\": ";
    if (slot.counter) {
      out << "{\"type\":\"counter\",\"value\":" << slot.counter->value()
          << '}';
    } else if (slot.gauge) {
      out << "{\"type\":\"gauge\",\"value\":"
          << json_double(slot.gauge->value()) << '}';
    } else {
      const Histogram& h = *slot.histogram;
      out << "{\"type\":\"histogram\",\"count\":" << h.count()
          << ",\"sum\":" << json_double(h.sum()) << ",\"buckets\":[";
      for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
        if (i > 0) {
          out << ',';
        }
        out << "{\"le\":"
            << (i < h.bounds().size() ? json_double(h.bounds()[i])
                                      : std::string("\"inf\""))
            << ",\"count\":" << h.bucket_count(i) << '}';
      }
      out << "]}";
    }
  }
  out << "\n}\n";
  return out.str();
}

void MetricsRegistry::write_json(const std::string& path) const {
  fs::write_file_atomic(path, to_json());
}

}  // namespace hpb::obs
