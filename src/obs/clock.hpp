// Injectable time source for the observability layer.
//
// Every timestamp the tracer or the metrics layer records flows through a
// ClockSource so that tests can substitute a FakeClock and obtain
// byte-identical trace files for identical runs: the real clock is the only
// nondeterministic input to a trace of a seeded tuning session. Production
// code uses SystemClock (monotonic, ns resolution); nothing in the repo
// reads wall-clock time for observability.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace hpb::obs {

class ClockSource {
 public:
  virtual ~ClockSource() = default;

  /// Monotonic nanoseconds since an arbitrary epoch. Must be safe to call
  /// from multiple threads (evaluation spans are timed on pool workers).
  [[nodiscard]] virtual std::uint64_t now_ns() = 0;
};

/// std::chrono::steady_clock — the default when no clock is injected.
class SystemClock final : public ClockSource {
 public:
  [[nodiscard]] std::uint64_t now_ns() override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// Shared process-wide instance (stateless, so sharing is free).
  [[nodiscard]] static SystemClock& instance() {
    static SystemClock clock;
    return clock;
  }
};

/// Deterministic clock for tests: every now_ns() call returns the previous
/// value advanced by a fixed step, so a run that makes the same sequence of
/// clock calls produces the same sequence of timestamps — and therefore a
/// byte-identical trace file. Thread-safe (atomic advance), though parallel
/// callers naturally race for ticks; determinism tests drive the engine
/// serially.
class FakeClock final : public ClockSource {
 public:
  explicit FakeClock(std::uint64_t start_ns = 0,
                     std::uint64_t step_ns = 1000) noexcept
      : next_(start_ns), step_(step_ns) {}

  [[nodiscard]] std::uint64_t now_ns() override {
    return next_.fetch_add(step_, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> next_;
  std::uint64_t step_;
};

}  // namespace hpb::obs
