// Structured trace sink: JSON-lines spans for the tuning stack.
//
// The engine and the tuners describe what they did as *completed spans*
// (name, id, optional parent id, start timestamp, duration, typed
// attributes) and instant events (duration 0). A span id is allocated
// before its children are emitted, so children can carry parent pointers
// while the file stays strictly append-only — children appear before the
// parent's record, consumers stitch by id.
//
// Two sinks ship:
//   - NoopTraceSink: every call is a no-op returning id 0. The engine's
//     behavior with a noop sink is bitwise identical to no sink at all
//     (proven by tests/test_obs.cpp) because tracing only ever *reads*
//     tuning state.
//   - JsonlTraceSink: one JSON object per line, flushed on destruction.
//     Append mode re-opens an existing trace and continues span ids after
//     the largest id already present, which is how a resumed session
//     (--resume) stitches its spans onto the crashed session's file.
//
// Timestamps come from an injectable ClockSource (obs/clock.hpp); under a
// FakeClock two identical runs produce byte-identical trace files.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>

namespace hpb::obs {

/// One typed key/value attribute of a span. Keys and string values are
/// borrowed (string_view): attributes live only for the emit() call.
struct TraceAttr {
  enum class Kind { kString, kDouble, kUint };

  std::string_view key;
  Kind kind = Kind::kUint;
  std::string_view string_value;
  double double_value = 0.0;
  std::uint64_t uint_value = 0;

  [[nodiscard]] static TraceAttr str(std::string_view key,
                                     std::string_view value) noexcept {
    return {key, Kind::kString, value, 0.0, 0};
  }
  [[nodiscard]] static TraceAttr num(std::string_view key,
                                     double value) noexcept {
    return {key, Kind::kDouble, {}, value, 0};
  }
  [[nodiscard]] static TraceAttr uint(std::string_view key,
                                      std::uint64_t value) noexcept {
    return {key, Kind::kUint, {}, 0.0, value};
  }
};

/// A completed span (start_ns < end_ns) or instant event (start == end).
struct TraceEvent {
  std::string_view name;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::span<const TraceAttr> attrs;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Allocate the next span id (ids are unique and increasing per sink).
  [[nodiscard]] virtual std::uint64_t next_id() = 0;

  /// Record one completed span / instant event. Thread-safe.
  virtual void emit(const TraceEvent& event) = 0;
};

/// Discards everything. Exists so callers can hold a TraceSink& without
/// branching; the engine treats a null sink pointer identically.
class NoopTraceSink final : public TraceSink {
 public:
  [[nodiscard]] std::uint64_t next_id() override { return 0; }
  void emit(const TraceEvent&) override {}
};

/// JSON-lines file sink. Lines look like
///   {"id":7,"parent":3,"name":"evaluate","ts":120,"dur":45,
///    "attrs":{"index":1,"status":"ok","value":8.43}}
/// with ts/dur in nanoseconds of the session's ClockSource.
class JsonlTraceSink final : public TraceSink {
 public:
  /// Start a fresh trace at `path` (truncating); ids start at 1.
  [[nodiscard]] static JsonlTraceSink create(const std::string& path);

  /// Continue an existing trace: span ids resume after the largest id in
  /// the file (a missing file degrades to create()).
  [[nodiscard]] static JsonlTraceSink append_to(const std::string& path);

  JsonlTraceSink(JsonlTraceSink&& other) noexcept;
  JsonlTraceSink& operator=(JsonlTraceSink&&) = delete;
  JsonlTraceSink(const JsonlTraceSink&) = delete;
  JsonlTraceSink& operator=(const JsonlTraceSink&) = delete;
  ~JsonlTraceSink() override;

  [[nodiscard]] std::uint64_t next_id() override {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  void emit(const TraceEvent& event) override;

  /// Flush buffered lines to the OS (destruction flushes too).
  void flush();

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  JsonlTraceSink(std::string path, int fd, std::uint64_t first_id);

  /// Drain the buffer to the fd; mutex_ must be held.
  void flush_locked();

  std::string path_;
  int fd_ = -1;
  std::atomic<std::uint64_t> next_id_{1};
  std::mutex mutex_;      // serializes emit/flush
  std::string buffer_;    // pending lines (guarded by mutex_)
};

/// Scan an existing JSON-lines trace for the largest "id" value (0 when
/// the file is missing or holds none). Exposed for tests.
[[nodiscard]] std::uint64_t max_trace_id(const std::string& path);

}  // namespace hpb::obs
