// Tiny JSON formatting helpers shared by the metrics snapshot and the
// JSONL trace sink. Deterministic by construction: doubles render in their
// shortest round-trip decimal form, so identical values always serialize
// to identical bytes.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace hpb::obs {

/// Shortest decimal form of `v` that parses back to exactly `v`.
inline std::string json_double(double v) {
  char full[32];
  std::snprintf(full, sizeof(full), "%.17g", v);
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[32];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == v) {
      return shorter;
    }
  }
  return full;
}

/// Escape a string for inclusion inside JSON double quotes.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace hpb::obs
