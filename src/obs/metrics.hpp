// Low-overhead metrics registry: named counters, gauges, and fixed-bucket
// histograms.
//
// The hot path (increment / set / record) is lock-free — a relaxed atomic
// op on a pre-registered handle — so the engine and the tuners can meter
// every evaluation without perturbing timing-sensitive runs. Registration
// and snapshotting are cold paths and take a mutex. Handles returned by the
// registry are stable for the registry's lifetime (instruments are heap-
// allocated and never moved), so callers register once and keep the
// reference.
//
// Snapshots are deterministic: instruments are serialized in name order,
// with doubles printed in shortest round-trip form, so two identical runs
// write byte-identical metrics files.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace hpb::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins double (stored as IEEE-754 bits; atomic<double> is not
/// guaranteed lock-free everywhere, atomic<uint64_t> is on every target we
/// build for).
class Gauge {
 public:
  void set(double v) noexcept;
  [[nodiscard]] double value() const noexcept;

 private:
  std::atomic<std::uint64_t> bits_{0};  // bits of 0.0
};

/// Fixed-bucket histogram: counts per bucket plus a running count/sum, all
/// relaxed atomics. Bucket i counts samples <= bounds[i]; one overflow
/// bucket catches the rest. Bounds are fixed at registration — no resizing
/// or locking on record().
class Histogram {
 public:
  explicit Histogram(std::span<const double> upper_bounds);

  void record(double sample) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept;
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;  // strictly increasing upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // CAS-accumulated double
};

/// Default bucket bounds for millisecond latencies (sub-ms to minutes).
[[nodiscard]] std::span<const double> default_latency_buckets_ms();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name. Re-registering an existing name returns the
  /// same instrument; registering a name under a different kind throws.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// `upper_bounds` must be non-empty and strictly increasing; it is
  /// ignored (the original bounds stand) when the histogram already exists.
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::span<const double> upper_bounds);

  /// Deterministic JSON snapshot: one object keyed by instrument name, in
  /// lexicographic order.
  [[nodiscard]] std::string to_json() const;

  /// Atomically (tmp + rename) write to_json() to `path`.
  void write_json(const std::string& path) const;

 private:
  struct Instrument {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mutex_;  // registration + snapshot only
  std::map<std::string, Instrument> instruments_;
};

}  // namespace hpb::obs
