// Recorder: the bundle of observability hooks a component records into.
//
// Three optional, non-owned pieces — a trace sink, a metrics registry, and
// a clock — travel together through the stack (EngineConfig.recorder →
// Tuner::set_recorder). All-null is the default and means "observability
// off": callers guard every emission on the corresponding pointer, so a
// default-constructed Recorder adds zero work to the tuning loop and the
// run stays bitwise identical to one without any recorder at all.
#pragma once

#include <cstdint>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace hpb::obs {

struct Recorder {
  /// Span sink; null disables tracing entirely (no ids, no clock reads).
  TraceSink* trace = nullptr;
  /// Metrics registry; null disables counters/gauges/histograms.
  MetricsRegistry* metrics = nullptr;
  /// Time source for spans and latency metrics; null selects the process
  /// SystemClock. Inject a FakeClock for deterministic traces.
  ClockSource* clock = nullptr;

  [[nodiscard]] bool active() const noexcept {
    return trace != nullptr || metrics != nullptr;
  }
  [[nodiscard]] bool tracing() const noexcept { return trace != nullptr; }

  [[nodiscard]] std::uint64_t now_ns() const {
    return (clock != nullptr ? *clock : SystemClock::instance()).now_ns();
  }
};

}  // namespace hpb::obs
