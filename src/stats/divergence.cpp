#include "stats/divergence.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace hpb::stats {
namespace {

void check_distribution(std::span<const double> p, const char* name) {
  double total = 0.0;
  for (double v : p) {
    HPB_REQUIRE(v >= 0.0, std::string(name) + ": negative probability");
    total += v;
  }
  HPB_REQUIRE(std::abs(total - 1.0) < 1e-6,
              std::string(name) + ": probabilities must sum to 1");
}

}  // namespace

double kl_divergence(std::span<const double> p, std::span<const double> q) {
  HPB_REQUIRE(p.size() == q.size(), "kl_divergence: size mismatch");
  HPB_REQUIRE(!p.empty(), "kl_divergence: empty input");
  check_distribution(p, "kl_divergence(P)");
  check_distribution(q, "kl_divergence(Q)");
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] == 0.0) {
      continue;
    }
    if (q[i] == 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    acc += p[i] * std::log(p[i] / q[i]);
  }
  return std::max(acc, 0.0);  // clamp tiny negative rounding
}

double js_divergence(std::span<const double> p, std::span<const double> q) {
  HPB_REQUIRE(p.size() == q.size(), "js_divergence: size mismatch");
  std::vector<double> m(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    m[i] = 0.5 * (p[i] + q[i]);
  }
  return 0.5 * kl_divergence(p, m) + 0.5 * kl_divergence(q, m);
}

}  // namespace hpb::stats
