// Running and batch summary statistics (Welford's online algorithm) used by
// the replicated experiment runner to report mean ± std over seeds.
#pragma once

#include <cstddef>
#include <span>

namespace hpb::stats {

/// Numerically stable online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merge another accumulator (parallel Welford / Chan et al.).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Convenience: summary over a whole span.
[[nodiscard]] RunningStats summarize(std::span<const double> values) noexcept;

}  // namespace hpb::stats
