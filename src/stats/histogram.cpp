#include "stats/histogram.hpp"

#include <cmath>

#include "common/error.hpp"

namespace hpb::stats {

HistogramDensity::HistogramDensity(std::size_t num_levels, double smoothing)
    : counts_(num_levels, 0.0), smoothing_(smoothing) {
  HPB_REQUIRE(num_levels > 0, "HistogramDensity: need at least one level");
  HPB_REQUIRE(smoothing > 0.0, "HistogramDensity: smoothing must be > 0");
}

void HistogramDensity::add(std::size_t level, double weight) {
  HPB_REQUIRE(level < counts_.size(), "HistogramDensity::add: level OOB");
  HPB_REQUIRE(weight >= 0.0, "HistogramDensity::add: negative weight");
  counts_[level] += weight;
  total_ += weight;
}

void HistogramDensity::add_all(std::span<const std::size_t> levels) {
  for (std::size_t level : levels) {
    add(level);
  }
}

double HistogramDensity::pmf(std::size_t level) const {
  HPB_REQUIRE(level < counts_.size(), "HistogramDensity::pmf: level OOB");
  const double denom =
      total_ + smoothing_ * static_cast<double>(counts_.size());
  return (counts_[level] + smoothing_) / denom;
}

double HistogramDensity::log_pmf(std::size_t level) const {
  return std::log(pmf(level));
}

std::vector<double> HistogramDensity::probabilities() const {
  std::vector<double> probs(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    probs[i] = pmf(i);
  }
  return probs;
}

std::vector<double> HistogramDensity::log_pmf_table() const {
  std::vector<double> table(counts_.size());
  log_pmf_table(std::span<double>(table));
  return table;
}

void HistogramDensity::log_pmf_table(std::span<double> out) const {
  HPB_REQUIRE(out.size() == counts_.size(),
              "HistogramDensity::log_pmf_table: output size mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = log_pmf(i);
  }
}

void HistogramDensity::mix_in(const HistogramDensity& other, double weight) {
  HPB_REQUIRE(other.counts_.size() == counts_.size(),
              "HistogramDensity::mix_in: level count mismatch");
  HPB_REQUIRE(weight >= 0.0, "HistogramDensity::mix_in: negative weight");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += weight * other.counts_[i];
  }
  total_ += weight * other.total_;
}

}  // namespace hpb::stats
