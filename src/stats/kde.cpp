#include "stats/kde.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace hpb::stats {
namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014327;

double std_normal_pdf(double z) {
  return kInvSqrt2Pi * std::exp(-0.5 * z * z);
}

double std_normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

}  // namespace

double KernelDensity::silverman_bandwidth(std::span<const double> samples,
                                          double range) {
  const auto n = samples.size();
  if (n < 2) {
    return std::max(0.1 * range, 1e-12);
  }
  double mean = 0.0;
  for (double s : samples) {
    mean += s;
  }
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (double s : samples) {
    var += (s - mean) * (s - mean);
  }
  var /= static_cast<double>(n - 1);
  const double sd = std::sqrt(var);
  const double h =
      1.06 * sd * std::pow(static_cast<double>(n), -0.2);
  // Floor keeps the density usable when all samples coincide.
  return std::max(h, 0.01 * std::max(range, 1e-12));
}

KernelDensity::KernelDensity(std::span<const double> samples, double lo,
                             double hi, double bandwidth)
    : centers_(samples.begin(), samples.end()),
      weights_(samples.size(), 1.0),
      total_weight_(static_cast<double>(samples.size())),
      lo_(lo),
      hi_(hi),
      bandwidth_(bandwidth) {
  HPB_REQUIRE(lo < hi, "KernelDensity: lo must be < hi");
  if (bandwidth_ <= 0.0) {
    bandwidth_ = silverman_bandwidth(samples, hi - lo);
  }
  for (double c : centers_) {
    HPB_REQUIRE(c >= lo_ && c <= hi_, "KernelDensity: sample out of range");
  }
}

double KernelDensity::unnormalized_pdf(double x) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < centers_.size(); ++i) {
    const double c = centers_[i];
    // Per-kernel truncation mass within [lo, hi].
    const double z_lo = (lo_ - c) / bandwidth_;
    const double z_hi = (hi_ - c) / bandwidth_;
    const double mass = std_normal_cdf(z_hi) - std_normal_cdf(z_lo);
    const double z = (x - c) / bandwidth_;
    acc += weights_[i] * std_normal_pdf(z) / (bandwidth_ * std::max(mass, 1e-12));
  }
  return acc;
}

double KernelDensity::pdf(double x) const {
  if (x < lo_ || x > hi_) {
    return 0.0;
  }
  if (centers_.empty()) {
    return 1.0 / (hi_ - lo_);  // uniform fallback
  }
  return unnormalized_pdf(x) / total_weight_;
}

double KernelDensity::log_pdf(double x) const {
  return std::log(std::max(pdf(x), 1e-300));
}

std::vector<double> KernelDensity::log_pdf_many(
    std::span<const double> xs) const {
  std::vector<double> out(xs.size());
  log_pdf_many(xs, std::span<double>(out));
  return out;
}

void KernelDensity::log_pdf_many(std::span<const double> xs,
                                 std::span<double> out) const {
  HPB_REQUIRE(out.size() == xs.size(),
              "KernelDensity::log_pdf_many: output size mismatch");
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out[i] = log_pdf(xs[i]);
  }
}

double KernelDensity::sample(Rng& rng) const {
  if (centers_.empty()) {
    return rng.uniform(lo_, hi_);
  }
  const std::size_t k = rng.categorical(weights_);
  double x = centers_[k] + bandwidth_ * rng.normal();
  // Reflect into [lo, hi]; a couple of passes suffice for any sane bandwidth.
  for (int pass = 0; pass < 64 && (x < lo_ || x > hi_); ++pass) {
    if (x < lo_) {
      x = 2.0 * lo_ - x;
    }
    if (x > hi_) {
      x = 2.0 * hi_ - x;
    }
  }
  return std::clamp(x, lo_, hi_);
}

void KernelDensity::mix_in(const KernelDensity& other, double weight) {
  HPB_REQUIRE(weight >= 0.0, "KernelDensity::mix_in: negative weight");
  HPB_REQUIRE(other.lo_ == lo_ && other.hi_ == hi_,
              "KernelDensity::mix_in: support mismatch");
  if (weight == 0.0 || other.centers_.empty()) {
    return;
  }
  centers_.insert(centers_.end(), other.centers_.begin(),
                  other.centers_.end());
  for (double w : other.weights_) {
    weights_.push_back(weight * w);
    total_weight_ += weight * w;
  }
}

}  // namespace hpb::stats
