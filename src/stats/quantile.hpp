// Quantile and order-statistic helpers used by the surrogate's good/bad
// split (α-quantile threshold y(τ), §III-C of the paper).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hpb::stats {

/// α-quantile of `values` by linear interpolation between order statistics
/// (the "linear" / type-7 definition). alpha in [0, 1]. Throws on empty input.
[[nodiscard]] double quantile(std::span<const double> values, double alpha);

/// Number of elements strictly below `threshold`.
[[nodiscard]] std::size_t count_below(std::span<const double> values,
                                      double threshold);

/// Threshold used by the TPE split: the value such that ceil(alpha * n)
/// observations are treated as "good" (y < threshold ranks them). Returns the
/// (k+1)-th smallest value where k = max(1, floor(alpha*n)), i.e. the first
/// "bad" value; ties are handled by the caller comparing with `<`.
[[nodiscard]] double split_threshold(std::span<const double> values,
                                     double alpha);

/// Indices of the k smallest elements (ascending by value).
[[nodiscard]] std::vector<std::size_t> smallest_k_indices(
    std::span<const double> values, std::size_t k);

}  // namespace hpb::stats
