// Quantile and order-statistic helpers used by the surrogate's good/bad
// split (α-quantile threshold y(τ), §III-C of the paper).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hpb::stats {

/// α-quantile of `values` by linear interpolation between order statistics
/// (the "linear" / type-7 definition). alpha in [0, 1]. Throws on empty input.
[[nodiscard]] double quantile(std::span<const double> values, double alpha);

/// Number of elements strictly below `threshold`.
[[nodiscard]] std::size_t count_below(std::span<const double> values,
                                      double threshold);

/// Threshold used by the TPE split: the value such that ceil(alpha * n)
/// observations are treated as "good" (y < threshold ranks them). Returns the
/// (k+1)-th smallest value where k = max(1, floor(alpha*n)), i.e. the first
/// "bad" value; ties are handled by the caller comparing with `<`.
[[nodiscard]] double split_threshold(std::span<const double> values,
                                     double alpha);

/// Indices of the k smallest elements (ascending by value).
[[nodiscard]] std::vector<std::size_t> smallest_k_indices(
    std::span<const double> values, std::size_t k);

/// The TPE good/bad split by *rank*: exactly max(1, floor(alpha*n)) indices
/// (clamped to n-1) go into `good`, ordered by ascending value with ties
/// broken by original index (stable). `threshold` is the value of the first
/// observation ranked "bad". This is the single split definition shared by
/// History::split and make_transfer_prior, so heavy ties partition the same
/// data into identical groups everywhere.
struct RankSplit {
  std::vector<std::size_t> good;
  std::vector<std::size_t> bad;
  double threshold = 0.0;
};

/// Split `values` (n >= 2, alpha in (0,1)) by rank as described above.
[[nodiscard]] RankSplit rank_split(std::span<const double> values,
                                   double alpha);

}  // namespace hpb::stats
