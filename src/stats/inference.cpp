#include "stats/inference.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "stats/quantile.hpp"

namespace hpb::stats {

ConfidenceInterval bootstrap_mean_ci(std::span<const double> values,
                                     double level, std::size_t resamples,
                                     std::uint64_t seed) {
  HPB_REQUIRE(!values.empty(), "bootstrap_mean_ci: empty input");
  HPB_REQUIRE(level > 0.0 && level < 1.0, "bootstrap_mean_ci: level in (0,1)");
  HPB_REQUIRE(resamples >= 100, "bootstrap_mean_ci: need >= 100 resamples");
  Rng rng(seed);
  const std::size_t n = values.size();
  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += values[rng.index(n)];
    }
    means.push_back(acc / static_cast<double>(n));
  }
  const double alpha = (1.0 - level) / 2.0;
  return {quantile(means, alpha), quantile(means, 1.0 - alpha), level};
}

MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                 std::span<const double> b) {
  HPB_REQUIRE(a.size() >= 2 && b.size() >= 2,
              "mann_whitney_u: need >= 2 observations per sample");
  const auto na = static_cast<double>(a.size());
  const auto nb = static_cast<double>(b.size());

  // Rank the pooled sample with midranks for ties.
  struct Tagged {
    double value;
    bool from_a;
  };
  std::vector<Tagged> pooled;
  pooled.reserve(a.size() + b.size());
  for (double v : a) {
    pooled.push_back({v, true});
  }
  for (double v : b) {
    pooled.push_back({v, false});
  }
  std::sort(pooled.begin(), pooled.end(),
            [](const Tagged& x, const Tagged& y) { return x.value < y.value; });

  double rank_sum_a = 0.0;
  double tie_correction = 0.0;
  const std::size_t n = pooled.size();
  for (std::size_t i = 0; i < n;) {
    std::size_t j = i;
    while (j < n && pooled[j].value == pooled[i].value) {
      ++j;
    }
    const double midrank =
        0.5 * (static_cast<double>(i + 1) + static_cast<double>(j));
    const auto t = static_cast<double>(j - i);
    if (t > 1.0) {
      tie_correction += t * t * t - t;
    }
    for (std::size_t k = i; k < j; ++k) {
      if (pooled[k].from_a) {
        rank_sum_a += midrank;
      }
    }
    i = j;
  }

  MannWhitneyResult result;
  result.u_statistic = rank_sum_a - na * (na + 1.0) / 2.0;
  result.effect_size = result.u_statistic / (na * nb);

  const double total = na + nb;
  const double mean_u = na * nb / 2.0;
  const double var_u = na * nb / 12.0 *
                       (total + 1.0 - tie_correction / (total * (total - 1.0)));
  HPB_REQUIRE(var_u > 0.0, "mann_whitney_u: all observations identical");
  result.z_score = (result.u_statistic - mean_u) / std::sqrt(var_u);
  // Two-sided p from the normal approximation.
  result.p_value = std::erfc(std::abs(result.z_score) / std::numbers::sqrt2);
  return result;
}

double ecdf(std::span<const double> values, double x) {
  HPB_REQUIRE(!values.empty(), "ecdf: empty input");
  const auto count = static_cast<double>(
      std::count_if(values.begin(), values.end(),
                    [x](double v) { return v <= x; }));
  return count / static_cast<double>(values.size());
}

}  // namespace hpb::stats
