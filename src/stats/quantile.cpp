#include "stats/quantile.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace hpb::stats {

double quantile(std::span<const double> values, double alpha) {
  HPB_REQUIRE(!values.empty(), "quantile: empty input");
  HPB_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "quantile: alpha out of [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double pos = alpha * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::size_t count_below(std::span<const double> values, double threshold) {
  return static_cast<std::size_t>(
      std::count_if(values.begin(), values.end(),
                    [threshold](double v) { return v < threshold; }));
}

double split_threshold(std::span<const double> values, double alpha) {
  HPB_REQUIRE(!values.empty(), "split_threshold: empty input");
  HPB_REQUIRE(alpha > 0.0 && alpha < 1.0, "split_threshold: alpha in (0,1)");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = sorted.size();
  // At least one observation must land in the "good" group.
  std::size_t n_good = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(alpha * static_cast<double>(n))));
  n_good = std::min(n_good, n - 1);  // keep at least one "bad" observation
  return sorted[n_good];
}

RankSplit rank_split(std::span<const double> values, double alpha) {
  HPB_REQUIRE(alpha > 0.0 && alpha < 1.0, "rank_split: alpha in (0,1)");
  HPB_REQUIRE(values.size() >= 2, "rank_split: need >= 2 values");
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&values](std::size_t a, std::size_t b) {
                     return values[a] < values[b];
                   });
  std::size_t n_good = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(alpha * static_cast<double>(n))));
  n_good = std::min(n_good, n - 1);

  RankSplit split;
  split.good.assign(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(n_good));
  split.bad.assign(order.begin() + static_cast<std::ptrdiff_t>(n_good),
                   order.end());
  split.threshold = values[order[n_good]];  // first value ranked "bad"
  return split;
}

std::vector<std::size_t> smallest_k_indices(std::span<const double> values,
                                            std::size_t k) {
  HPB_REQUIRE(k <= values.size(), "smallest_k_indices: k > size");
  std::vector<std::size_t> idx(values.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [&](std::size_t a, std::size_t b) {
                      return values[a] < values[b];
                    });
  idx.resize(k);
  return idx;
}

}  // namespace hpb::stats
