// Smoothed categorical histogram density.
//
// Implements the discrete-parameter density estimate of §III-B1: for a
// parameter with K levels, pg / pb are histograms of the observed level
// indices, with additive (Laplace) smoothing so unseen levels keep non-zero
// mass and the pg/pb acquisition ratio stays finite.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hpb::stats {

class HistogramDensity {
 public:
  /// K-level histogram with additive smoothing pseudo-count per level.
  explicit HistogramDensity(std::size_t num_levels, double smoothing = 1.0);

  /// Add one observation of level `level` with the given weight.
  void add(std::size_t level, double weight = 1.0);

  /// Add many observations at once.
  void add_all(std::span<const std::size_t> levels);

  /// Probability mass of `level` (smoothed, sums to 1 over all levels).
  [[nodiscard]] double pmf(std::size_t level) const;

  /// log pmf(level).
  [[nodiscard]] double log_pmf(std::size_t level) const;

  /// Full probability vector (sums to 1).
  [[nodiscard]] std::vector<double> probabilities() const;

  /// log pmf of every level at once. Entry l equals log_pmf(l) bitwise —
  /// acquisition score tables precompute this once per surrogate fit so a
  /// candidate sweep replaces per-candidate log/divide with a table lookup.
  [[nodiscard]] std::vector<double> log_pmf_table() const;

  /// Allocation-free variant writing into `out` (size must equal
  /// num_levels()); the incremental acquisition-table rebuild fills its
  /// flat tables in place through this.
  void log_pmf_table(std::span<double> out) const;

  /// Mix another histogram over the same levels into this one with weight w
  /// (implements the transfer prior of eq. 9–10: counts += w * other.counts).
  void mix_in(const HistogramDensity& other, double weight);

  [[nodiscard]] std::size_t num_levels() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] double total_weight() const noexcept { return total_; }
  [[nodiscard]] double smoothing() const noexcept { return smoothing_; }

  /// Raw (unsmoothed) per-level weights. Together with smoothing(), these
  /// fully determine pmf/log_pmf — incremental acquisition tables compare
  /// them bitwise to detect an unchanged marginal between fits.
  [[nodiscard]] std::span<const double> counts() const noexcept {
    return counts_;
  }

 private:
  std::vector<double> counts_;
  double total_ = 0.0;  // sum of raw (unsmoothed) weights
  double smoothing_;
};

}  // namespace hpb::stats
