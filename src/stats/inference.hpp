// Statistical inference helpers for the experiment harnesses: bootstrap
// confidence intervals for the replicated means reported in Figs. 2–6, and
// the Mann–Whitney U test used to decide whether one tuning method's
// distribution of outcomes is significantly better than another's.
#pragma once

#include <cstdint>
#include <span>

#include "common/rng.hpp"

namespace hpb::stats {

struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  double level = 0.95;
};

/// Percentile-bootstrap confidence interval for the mean of `values`.
/// `resamples` bootstrap draws; deterministic given `seed`.
[[nodiscard]] ConfidenceInterval bootstrap_mean_ci(
    std::span<const double> values, double level = 0.95,
    std::size_t resamples = 2000, std::uint64_t seed = 0xB007);

struct MannWhitneyResult {
  double u_statistic = 0.0;   // U for the first sample
  double z_score = 0.0;       // normal approximation (tie-corrected)
  double p_value = 0.0;       // two-sided
  /// P(a < b) + 0.5 P(a == b): the common-language effect size. 0.5 means
  /// no difference; < 0.5 means `a` tends to be larger.
  double effect_size = 0.5;
};

/// Two-sided Mann–Whitney U test comparing independent samples a and b
/// (normal approximation with tie correction; both samples need >= 2
/// observations, and at least some variation overall).
[[nodiscard]] MannWhitneyResult mann_whitney_u(std::span<const double> a,
                                               std::span<const double> b);

/// Empirical CDF value: fraction of `values` <= x.
[[nodiscard]] double ecdf(std::span<const double> values, double x);

}  // namespace hpb::stats
