#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace hpb::stats {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

RunningStats summarize(std::span<const double> values) noexcept {
  RunningStats s;
  for (double v : values) {
    s.add(v);
  }
  return s;
}

}  // namespace hpb::stats
