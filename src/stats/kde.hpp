// Gaussian kernel density estimation for continuous parameters (§III-B2).
//
// The paper uses Gaussian kernels with a fixed bandwidth; we support both a
// fixed bandwidth and Silverman's rule as a default when none is given.
// Densities are truncated-and-renormalized to the parameter's [lo, hi] range
// so that boundary mass is not lost.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace hpb::stats {

class KernelDensity {
 public:
  /// Build a KDE over samples within [lo, hi]. bandwidth <= 0 selects
  /// Silverman's rule-of-thumb; samples may be empty (uniform fallback).
  KernelDensity(std::span<const double> samples, double lo, double hi,
                double bandwidth = 0.0);

  /// Density at x (renormalized over [lo, hi]; uniform if no samples).
  [[nodiscard]] double pdf(double x) const;

  /// log pdf(x).
  [[nodiscard]] double log_pdf(double x) const;

  /// log pdf of many points at once; entry i equals log_pdf(xs[i]) bitwise.
  /// Acquisition score tables memoize the distinct values of a candidate
  /// pool through this, turning the O(pool * samples) ranking sweep into
  /// O(distinct * samples) + table lookups.
  [[nodiscard]] std::vector<double> log_pdf_many(
      std::span<const double> xs) const;

  /// Allocation-free variant writing into `out` (same size as `xs`); the
  /// incremental acquisition-table rebuild fills its flat tables in place
  /// through this.
  void log_pdf_many(std::span<const double> xs, std::span<double> out) const;

  /// Draw one sample: pick a kernel center uniformly, add Gaussian noise,
  /// reflect into [lo, hi]. Used by the Proposal selection strategy (§III-D).
  [[nodiscard]] double sample(Rng& rng) const;

  /// Mix another KDE (same support) into this one: its kernel centers are
  /// appended with the given per-sample weight (transfer prior, eq. 9–10).
  void mix_in(const KernelDensity& other, double weight);

  [[nodiscard]] double bandwidth() const noexcept { return bandwidth_; }
  [[nodiscard]] std::size_t size() const noexcept { return centers_.size(); }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }

  /// Kernel centers and per-center weights. Together with bandwidth(),
  /// lo(), and hi(), these fully determine pdf/log_pdf — incremental
  /// acquisition tables compare them bitwise to detect an unchanged
  /// marginal between fits.
  [[nodiscard]] std::span<const double> centers() const noexcept {
    return centers_;
  }
  [[nodiscard]] std::span<const double> kernel_weights() const noexcept {
    return weights_;
  }

  /// Silverman's rule-of-thumb bandwidth for the given samples, floored at a
  /// small fraction of the range so degenerate samples stay usable.
  [[nodiscard]] static double silverman_bandwidth(
      std::span<const double> samples, double range);

 private:
  [[nodiscard]] double unnormalized_pdf(double x) const;

  std::vector<double> centers_;
  std::vector<double> weights_;
  double total_weight_ = 0.0;
  double lo_;
  double hi_;
  double bandwidth_;
};

}  // namespace hpb::stats
