// KL and Jensen–Shannon divergence between discrete distributions
// (eq. 13–14), used for the parameter-importance analysis of §VI.
#pragma once

#include <span>

namespace hpb::stats {

/// Kullback–Leibler divergence D_KL(P || Q) in nats. Both inputs must be
/// same-length probability vectors; terms with P(x) == 0 contribute zero.
/// Q(x) == 0 with P(x) > 0 yields +infinity.
[[nodiscard]] double kl_divergence(std::span<const double> p,
                                   std::span<const double> q);

/// Jensen–Shannon divergence (eq. 13): symmetric, in [0, ln 2] nats.
[[nodiscard]] double js_divergence(std::span<const double> p,
                                   std::span<const double> q);

}  // namespace hpb::stats
