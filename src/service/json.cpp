#include "service/json.hpp"

#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/error.hpp"

namespace hpb::service {

JsonParseError::JsonParseError(std::string message, std::size_t offset)
    : message_("JSON parse error at byte " + std::to_string(offset) + ": " +
               std::move(message)),
      offset_(offset) {}

const char* JsonValue::kind_name() const noexcept {
  switch (kind_) {
    case Kind::kNull:
      return "null";
    case Kind::kBool:
      return "bool";
    case Kind::kNumber:
      return "number";
    case Kind::kString:
      return "string";
    case Kind::kArray:
      return "array";
    case Kind::kObject:
      return "object";
  }
  return "?";
}

bool JsonValue::as_bool() const {
  HPB_REQUIRE(is_bool(),
              std::string("expected a bool, got ") + kind_name());
  return bool_;
}

double JsonValue::as_number() const {
  HPB_REQUIRE(is_number(),
              std::string("expected a number, got ") + kind_name());
  return number_;
}

const std::string& JsonValue::as_string() const {
  HPB_REQUIRE(is_string(),
              std::string("expected a string, got ") + kind_name());
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  HPB_REQUIRE(is_array(),
              std::string("expected an array, got ") + kind_name());
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  HPB_REQUIRE(is_object(),
              std::string("expected an object, got ") + kind_name());
  return object_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  const auto& members = as_object();
  const auto it = members.find(key);
  return it == members.end() ? nullptr : &it->second;
}

JsonValue JsonValue::make_null() { return {}; }
JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}
JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}
JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}
JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}
JsonValue JsonValue::make_object(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

namespace {

constexpr std::size_t kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    skip_ws();
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after the JSON value");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError(message, pos_);
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const noexcept { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  void expect(char c) {
    if (eof() || peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) {
      fail("nesting deeper than " + std::to_string(kMaxDepth) + " levels");
    }
    if (eof()) {
      fail("unexpected end of input");
    }
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return JsonValue::make_string(parse_string());
      case 't':
        if (consume_literal("true")) {
          return JsonValue::make_bool(true);
        }
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) {
          return JsonValue::make_bool(false);
        }
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) {
          return JsonValue::make_null();
        }
        fail("invalid literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return JsonValue::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"') {
        fail("expected a string object key");
      }
      std::string key = parse_string();
      if (members.contains(key)) {
        fail("duplicate object key '" + key + "'");
      }
      skip_ws();
      expect(':');
      skip_ws();
      members.emplace(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (eof()) {
        fail("unterminated object");
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue::make_object(std::move(members));
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return JsonValue::make_array(std::move(items));
    }
    while (true) {
      skip_ws();
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (eof()) {
        fail("unterminated array");
      }
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (eof()) {
        fail("unterminated string");
      }
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;  // consume the backslash
      if (eof()) {
        fail("unterminated escape sequence");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          out += parse_unicode_escape();
          break;
        }
        default:
          --pos_;
          fail("invalid escape sequence");
      }
    }
  }

  std::string parse_unicode_escape() {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
    }
    unsigned code = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      const char c = text_[pos_ + i];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    // Surrogate pairs are rejected rather than decoded: session names and
    // verbs are ASCII, and a daemon has no business normalizing UTF-16.
    if (code >= 0xD800 && code <= 0xDFFF) {
      fail("surrogate \\u escapes are not supported");
    }
    // UTF-8 encode the code point.
    std::string out;
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
    return out;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') {
      ++pos_;
    }
    if (eof() || peek() < '0' || peek() > '9') {
      pos_ = start;
      fail("invalid value");
    }
    if (peek() == '0') {
      ++pos_;  // no leading zeros in JSON
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9') {
        ++pos_;
      }
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9') {
        fail("digits required after decimal point");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') {
        ++pos_;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) {
        ++pos_;
      }
      if (eof() || peek() < '0' || peek() > '9') {
        fail("digits required in exponent");
      }
      while (!eof() && peek() >= '0' && peek() <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number");
    }
    // Overflow is rejected rather than rounded to +-inf: every number a
    // client can legitimately send (values, seeds, counts) is finite.
    if (!std::isfinite(v)) {
      pos_ = start;
      fail("number out of range");
    }
    return JsonValue::make_number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse(); }

}  // namespace hpb::service
