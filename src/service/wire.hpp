// Wire protocol of the tuning service: one JSON object per line in, one
// JSON object per line out.
//
// Requests name a verb and a session; the service routes them to the
// SessionManager. The schema is strict — unknown keys, wrong types, and
// missing required fields are rejected with a structured error before any
// state changes, so a buggy client cannot half-apply a request.
//
//   {"verb":"create","session":"s1","dataset":"kripke","method":"hiperbot",
//    "seed":7,"batch_size":4,"max_evaluations":100}
//   {"verb":"suggest","session":"s1","count":4}
//   {"verb":"observe","session":"s1",
//    "results":[{"config":[1,0,2],"y":12.5,"status":"ok"}]}
//   {"verb":"status","session":"s1"}
//   {"verb":"close","session":"s1"}
//
// Responses are {"ok":true,...} or
// {"ok":false,"error":{"code":"...","message":"..."}} with codes
// parse_error (malformed JSON), bad_request (schema violation),
// unknown_verb, session_error (the manager/session rejected the verb:
// unknown session, out-of-order observe, double close, ...), internal.
// Doubles render in shortest round-trip form (obs::json_double), so
// configuration values and objective values cross the wire bit-exactly.
//
// handle_line never throws and never crashes the daemon: every failure,
// including a hostile request, becomes an error response.
#pragma once

#include <string>
#include <string_view>

#include "core/session_manager.hpp"

namespace hpb::service {

/// Stable error codes of the wire protocol.
namespace error_code {
inline constexpr std::string_view kParseError = "parse_error";
inline constexpr std::string_view kBadRequest = "bad_request";
inline constexpr std::string_view kUnknownVerb = "unknown_verb";
inline constexpr std::string_view kSessionError = "session_error";
inline constexpr std::string_view kInternal = "internal";
}  // namespace error_code

class WireService {
 public:
  explicit WireService(core::SessionManager& manager) : manager_(manager) {}

  /// Handle one request line (without the trailing newline) and return the
  /// response line (without a trailing newline). Thread-safe: verbs on
  /// different sessions run concurrently, the manager serializes verbs on
  /// the same session.
  [[nodiscard]] std::string handle_line(std::string_view line);

  [[nodiscard]] core::SessionManager& manager() noexcept { return manager_; }

 private:
  core::SessionManager& manager_;
};

}  // namespace hpb::service
