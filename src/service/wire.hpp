// Wire protocol of the tuning service: one JSON object per line in, one
// JSON object per line out.
//
// Requests name a verb and a session; the service routes them to the
// SessionManager. The schema is strict — unknown keys, wrong types, and
// missing required fields are rejected with a structured error before any
// state changes, so a buggy client cannot half-apply a request.
//
//   {"verb":"create","session":"s1","dataset":"kripke","method":"hiperbot",
//    "seed":7,"batch_size":4,"max_evaluations":100}
//   {"verb":"suggest","session":"s1","count":4}
//   {"verb":"observe","session":"s1",
//    "results":[{"config":[1,0,2],"y":12.5,"status":"ok"}]}
//   {"verb":"status","session":"s1"}
//   {"verb":"close","session":"s1"}
//
// Responses are {"ok":true,...} or
// {"ok":false,"error":{"code":"...","message":"..."}} with codes
// parse_error (malformed JSON), bad_request (schema violation),
// unknown_verb, session_error (the manager/session rejected the verb:
// unknown session, out-of-order observe, double close, ...), overloaded
// (an admission cap shed the request; retry after backoff), internal.
// Doubles render in shortest round-trip form (obs::json_double), so
// configuration values and objective values cross the wire bit-exactly.
//
// Idempotent retries: suggest / observe / cancel accept an optional
// client-chosen `"rid"` string (1..64 chars). The service remembers the
// last kRidsPerSession successful responses per session; a retried rid
// returns the recorded response byte-identically — no new tokens minted,
// no observation double-applied. Error responses are not recorded, so a
// shed or rejected request may be retried with the same rid. The cache is
// in-memory only: after a daemon restart a retried rid re-executes, which
// is why clients resync via `status` after a reconnect (see README,
// "Operating the daemon").
//
// handle_line never throws and never crashes the daemon: every failure,
// including a hostile request, becomes an error response.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "core/session_manager.hpp"

namespace hpb::service {

/// Stable error codes of the wire protocol.
namespace error_code {
inline constexpr std::string_view kParseError = "parse_error";
inline constexpr std::string_view kBadRequest = "bad_request";
inline constexpr std::string_view kUnknownVerb = "unknown_verb";
inline constexpr std::string_view kSessionError = "session_error";
inline constexpr std::string_view kOverloaded = "overloaded";
inline constexpr std::string_view kInternal = "internal";
}  // namespace error_code

/// Build one {"ok":false,...} response line (no trailing newline). Exposed
/// for the server's connection-shedding path, which must speak the same
/// error shape without owning a WireService.
[[nodiscard]] std::string error_response(std::string_view code,
                                         std::string_view message);

class WireService {
 public:
  /// Most-recent successful responses remembered per session for rid
  /// replay. A client retrying over a fresh connection only ever retries
  /// its last in-flight request, so a small window per session suffices.
  static constexpr std::size_t kRidsPerSession = 32;

  explicit WireService(core::SessionManager& manager);
  ~WireService();

  WireService(const WireService&) = delete;
  WireService& operator=(const WireService&) = delete;

  /// Handle one request line (without the trailing newline) and return the
  /// response line (without a trailing newline). Thread-safe: verbs on
  /// different sessions run concurrently, the manager serializes verbs on
  /// the same session.
  [[nodiscard]] std::string handle_line(std::string_view line);

  [[nodiscard]] core::SessionManager& manager() noexcept { return manager_; }

 private:
  struct RidState;  // striped per-session replay cache (wire.cpp)

  /// Replay the recorded response for (session, rid), or run `run` with the
  /// session's rid lock held — a concurrent retry of the same rid blocks
  /// and then replays, so the verb executes exactly once.
  [[nodiscard]] std::string replay_or_execute(
      const std::string& session, const std::string& rid,
      const std::function<std::string()>& run);

  /// Drop a closed session's replay window (its name may be re-created
  /// after the finalized journal is removed out of band).
  void forget_rids(const std::string& session);

  core::SessionManager& manager_;
  std::unique_ptr<RidState> rids_;
};

}  // namespace hpb::service
