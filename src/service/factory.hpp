// The standard SessionFactory used by `hiperbot serve`, the storm bench,
// and the service tests: sessions tune over the registry's simulated §V
// datasets with any method make_named_tuner knows.
//
// Datasets are built once per name and cached (building enumerates the
// whole table; sharing it across thousands of sessions is what makes 10k
// concurrent sessions affordable — TabularObjective evaluation is
// read-only and thread-safe).
#pragma once

#include "core/session_manager.hpp"

namespace hpb::service {

/// Factory over apps::dataset_registry() × eval::make_named_tuner().
/// Thread-safe; throws hpb::Error for unknown datasets or methods.
[[nodiscard]] core::SessionFactory dataset_session_factory();

}  // namespace hpb::service
