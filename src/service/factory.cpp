#include "service/factory.hpp"

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "apps/registry.hpp"
#include "eval/methods.hpp"
#include "tabular/tabular_objective.hpp"

namespace hpb::service {

core::SessionFactory dataset_session_factory() {
  // One cache per factory (not a global): two managers in one process —
  // say, a test and a server — keep independent lifetimes.
  struct Cache {
    std::mutex mutex;
    std::unordered_map<std::string,
                       std::shared_ptr<const tabular::TabularObjective>>
        datasets;
  };
  auto cache = std::make_shared<Cache>();
  return [cache](const core::SessionSpec& spec) {
    std::shared_ptr<const tabular::TabularObjective> dataset;
    {
      std::lock_guard<std::mutex> lock(cache->mutex);
      auto& slot = cache->datasets[spec.dataset];
      if (slot == nullptr) {
        slot = std::make_shared<const tabular::TabularObjective>(
            apps::dataset_by_name(spec.dataset).make());
      }
      dataset = slot;
    }
    core::SessionBackend backend;
    backend.tuner = eval::make_named_tuner(spec.method, *dataset, spec.seed);
    backend.space = dataset->space_ptr();
    return backend;
  };
}

}  // namespace hpb::service
