#include "service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "service/wire.hpp"

namespace hpb::service {

namespace {

std::string errno_text() { return std::strerror(errno); }

int listen_unix(const std::string& path) {
  HPB_REQUIRE(path.size() < sizeof(sockaddr_un{}.sun_path),
              "unix socket path too long: " + path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  HPB_REQUIRE(fd >= 0, "socket(AF_UNIX): " + errno_text());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  // A stale socket file from a crashed daemon blocks bind with EADDRINUSE;
  // replacing it is the standard daemon restart behavior.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = errno_text();
    ::close(fd);
    HPB_REQUIRE(false, "bind unix socket '" + path + "': " + why);
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const std::string why = errno_text();
    ::close(fd);
    HPB_REQUIRE(false, "listen on '" + path + "': " + why);
  }
  return fd;
}

int listen_tcp(int port, int* actual_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  HPB_REQUIRE(fd >= 0, "socket(AF_INET): " + errno_text());
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = errno_text();
    ::close(fd);
    HPB_REQUIRE(false,
                "bind 127.0.0.1:" + std::to_string(port) + ": " + why);
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    const std::string why = errno_text();
    ::close(fd);
    HPB_REQUIRE(false, "listen on port " + std::to_string(port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *actual_port = ntohs(bound.sin_port);
  }
  return fd;
}

void write_all(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return;  // client went away; nothing useful to do
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
}

}  // namespace

LineServer::LineServer(Handler handler, ServerConfig config)
    : handler_(std::move(handler)), config_(std::move(config)) {
  HPB_REQUIRE(handler_ != nullptr, "LineServer: a handler is required");
  HPB_REQUIRE(!config_.unix_path.empty() || config_.tcp_port >= 0,
              "LineServer: configure a unix_path, a tcp_port, or both");
  try {
    if (!config_.unix_path.empty()) {
      listen_fds_.push_back(listen_unix(config_.unix_path));
    }
    if (config_.tcp_port >= 0) {
      listen_fds_.push_back(listen_tcp(config_.tcp_port, &tcp_port_));
    }
  } catch (...) {
    close_listeners();
    throw;
  }
}

LineServer::~LineServer() { stop(); }

bool LineServer::stopping() const noexcept {
  return stop_.load(std::memory_order_relaxed) ||
         (config_.stop_flag != nullptr &&
          config_.stop_flag->load(std::memory_order_relaxed));
}

bool LineServer::draining() const noexcept {
  return draining_.load(std::memory_order_relaxed) ||
         (config_.drain_flag != nullptr &&
          config_.drain_flag->load(std::memory_order_relaxed));
}

void LineServer::serve() { run(); }

void LineServer::start() {
  accept_thread_ = std::thread([this] { run(); });
}

void LineServer::run() {
  accept_loop();
  // Graceful drain: accepting has stopped, live connections finish the
  // requests they already sent and hang up on their own (see the draining
  // checks in serve_connection). A hard stop() still cuts the wait short.
  while (draining() && !stopping()) {
    reap_finished_connections();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      if (connections_.empty()) {
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

std::size_t LineServer::live_connections_locked() const {
  std::size_t live = 0;
  for (const auto& conn : connections_) {
    if (!conn->done.load(std::memory_order_acquire)) {
      ++live;
    }
  }
  return live;
}

void LineServer::accept_loop() {
  std::vector<pollfd> fds;
  fds.reserve(listen_fds_.size());
  for (const int fd : listen_fds_) {
    fds.push_back({.fd = fd, .events = POLLIN, .revents = 0});
  }
  while (!stopping() && !draining()) {
    for (pollfd& p : fds) {
      p.revents = 0;
    }
    // The timeout bounds how long an external stop flag (no wakeup
    // channel) can go unnoticed.
    const int rc = ::poll(fds.data(), fds.size(), 100);
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;
    }
    reap_finished_connections();
    if (rc == 0) {
      continue;
    }
    for (const pollfd& p : fds) {
      if ((p.revents & POLLIN) == 0) {
        continue;
      }
      const int client = ::accept(p.fd, nullptr, nullptr);
      if (client < 0) {
        continue;  // raced with stop() closing the listener
      }
      accepted_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(connections_mutex_);
      if (stopped_) {
        ::close(client);
        return;
      }
      if (config_.max_connections > 0 &&
          live_connections_locked() >= config_.max_connections) {
        // Shed at the door: one structured error the client can see (a
        // silent close looks like a network fault and triggers blind
        // reconnect storms), then hang up.
        shed_.fetch_add(1, std::memory_order_relaxed);
        write_all(client,
                  error_response(error_code::kOverloaded,
                                 "server is at its connection cap of " +
                                     std::to_string(config_.max_connections) +
                                     "; retry after backoff") +
                      "\n");
        ::close(client);
        continue;
      }
      auto conn = std::make_unique<Connection>();
      conn->fd.store(client, std::memory_order_relaxed);
      Connection* raw = conn.get();
      conn->thread = std::thread([this, raw] { serve_connection(*raw); });
      connections_.push_back(std::move(conn));
    }
  }
}

void LineServer::reap_finished_connections() {
  // A long-lived daemon churns through many short connections; joining
  // finished threads here keeps the connection table from growing without
  // bound between stop()s.
  std::lock_guard<std::mutex> lock(connections_mutex_);
  std::erase_if(connections_, [](const std::unique_ptr<Connection>& conn) {
    if (!conn->done.load(std::memory_order_acquire)) {
      return false;
    }
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
    return true;
  });
}

void LineServer::close_connection(Connection& conn) noexcept {
  const int fd = conn.fd.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

void LineServer::serve_connection(Connection& conn) {
  const int fd = conn.fd.load(std::memory_order_relaxed);
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping()) {
    pollfd p{.fd = fd, .events = POLLIN, .revents = 0};
    const int rc = ::poll(&p, 1, 100);
    if (rc < 0 && errno != EINTR) {
      break;
    }
    if (rc <= 0) {
      // Draining and idle (no bytes pending, no partial line buffered):
      // everything this client sent has been answered — hang up so the
      // drain in run() can complete.
      if (rc == 0 && buffer.empty() && draining()) {
        break;
      }
      continue;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      // EOF: a final unterminated line still gets an answer (clients may
      // close right after their last request without a trailing newline) —
      // including the CRLF strip, so a telnet-style client's last line
      // parses the same as its terminated ones.
      if (!buffer.empty()) {
        std::string_view line(buffer);
        if (line.back() == '\r') {
          line.remove_suffix(1);
        }
        write_all(fd, handler_(line) + "\n");
      }
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    const auto cap_error = [&] {
      write_all(fd,
                "{\"ok\":false,\"error\":{\"code\":\"bad_request\","
                "\"message\":\"request line exceeds " +
                    std::to_string(config_.max_line_bytes) + " bytes\"}}\n");
      open = false;  // the structured error is the last thing written
    };
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         open && nl != std::string::npos; nl = buffer.find('\n', start)) {
      std::string_view line(buffer.data() + start, nl - start);
      // A complete oversized line must never reach the handler: it gets
      // the same structured cap error as an unterminated one, instead of
      // being silently accepted just because its newline arrived in the
      // same chunk.
      if (line.size() > config_.max_line_bytes) {
        cap_error();
        break;
      }
      if (!line.empty() && line.back() == '\r') {
        line.remove_suffix(1);
      }
      write_all(fd, handler_(line) + "\n");
      start = nl + 1;
    }
    if (!open) {
      break;
    }
    buffer.erase(0, start);
    if (buffer.size() > config_.max_line_bytes) {
      cap_error();
    }
  }
  // The connection thread is the sole closer of its fd (stop() only joins;
  // the 100ms poll bound guarantees this thread notices the stop flag), so
  // a reused descriptor can never be shut down by mistake.
  close_connection(conn);
  conn.done.store(true, std::memory_order_release);
}

void LineServer::close_listeners() noexcept {
  for (const int fd : listen_fds_) {
    ::close(fd);
  }
  listen_fds_.clear();
  if (!config_.unix_path.empty()) {
    ::unlink(config_.unix_path.c_str());
  }
}

void LineServer::stop() {
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    if (stopped_) {
      return;
    }
    stopped_ = true;
  }
  stop_.store(true, std::memory_order_relaxed);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::vector<std::unique_ptr<Connection>> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& conn : connections) {
    // Connection threads poll with a 100ms timeout and exit on the stop
    // flag, closing their own fd; joining is all that is needed here.
    if (conn->thread.joinable()) {
      conn->thread.join();
    }
  }
  close_listeners();
}

}  // namespace hpb::service
