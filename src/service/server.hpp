// LineServer: a minimal line-oriented socket front end for WireService.
//
// Listens on a Unix-domain socket, a TCP socket, or both; each accepted
// connection gets its own thread that reads newline-delimited requests,
// hands them to the handler, and writes back one response line per
// request. Connections are independent — the wire layer and the session
// manager below it do all cross-connection synchronization — so a slow
// client never stalls the others.
//
// Shutdown is cooperative: stop() (or an external stop flag, typically
// raised by SIGINT) wakes the poll-based accept loop, shuts down every
// live connection, and joins all threads. The destructor stops too, so a
// LineServer can never outlive its handler.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace hpb::service {

struct ServerConfig {
  /// Path for the Unix-domain listener; empty disables it. An existing
  /// socket file at the path is replaced (stale sockets from a crashed
  /// daemon would otherwise block restart forever).
  std::string unix_path;
  /// TCP listener: enabled when port >= 0 (0 picks an ephemeral port;
  /// port() reports the actual one). Binds to 127.0.0.1 — the service has
  /// no authentication, so remote exposure is an explicit reverse-proxy
  /// decision, not a default.
  int tcp_port = -1;
  /// Optional external stop flag (e.g. a SIGINT handler's), polled by the
  /// accept loop alongside the internal one. Not owned.
  const std::atomic<bool>* stop_flag = nullptr;
  /// Requests longer than this are answered with an error and the
  /// connection is dropped (a line that never ends would otherwise grow
  /// the buffer without bound).
  std::size_t max_line_bytes = 1 << 20;
  /// Cap on simultaneously live connections. An accept beyond the cap is
  /// answered with one structured `overloaded` error line and closed
  /// immediately — load is shed at the door instead of queueing client
  /// threads without bound. 0 = unlimited.
  std::size_t max_connections = 0;
  /// Optional external drain flag (typically a SIGTERM handler's): once
  /// raised, the server stops accepting, live connections finish the
  /// requests they have already sent, and serve() returns when they hang
  /// up or go idle. Not owned.
  const std::atomic<bool>* drain_flag = nullptr;
};

class LineServer {
 public:
  /// Maps one request line to one response line. Must be thread-safe; it
  /// is called concurrently from connection threads.
  using Handler = std::function<std::string(std::string_view)>;

  /// Binds and listens on construction (throws hpb::Error on bind
  /// failure); serving starts with start() or serve().
  LineServer(Handler handler, ServerConfig config);
  ~LineServer();

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// Run the accept loop on this thread until stop() / the stop flag.
  /// Under drain, returns only after live connections have finished.
  void serve();

  /// Run the accept loop on a background thread and return immediately.
  void start();

  /// Wake the accept loop, close all connections, join all threads.
  /// Idempotent.
  void stop();

  /// Graceful drain: stop accepting, let live connections finish their
  /// in-flight and already-buffered requests, then let them close once
  /// idle. Programmatic equivalent of ServerConfig::drain_flag.
  void drain() noexcept { draining_.store(true, std::memory_order_relaxed); }

  /// Actual TCP port (useful with tcp_port == 0); -1 without a TCP
  /// listener.
  [[nodiscard]] int port() const noexcept { return tcp_port_; }
  [[nodiscard]] const std::string& unix_path() const noexcept {
    return config_.unix_path;
  }
  /// Connections accepted over the server's lifetime.
  [[nodiscard]] std::uint64_t connections_accepted() const noexcept {
    return accepted_.load(std::memory_order_relaxed);
  }
  /// Connections shed by the max_connections cap.
  [[nodiscard]] std::uint64_t connections_shed() const noexcept {
    return shed_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    /// Owned socket; -1 once whichever of the connection thread or stop()
    /// gets there first has closed it (atomic exchange prevents the
    /// classic double-close-reused-fd hazard).
    std::atomic<int> fd{-1};
    std::atomic<bool> done{false};
    std::thread thread;
  };

  [[nodiscard]] bool stopping() const noexcept;
  [[nodiscard]] bool draining() const noexcept;
  void run();
  void accept_loop();
  void serve_connection(Connection& conn);
  void reap_finished_connections();
  [[nodiscard]] std::size_t live_connections_locked() const;
  void close_listeners() noexcept;
  static void close_connection(Connection& conn) noexcept;

  Handler handler_;
  ServerConfig config_;
  std::vector<int> listen_fds_;
  int tcp_port_ = -1;

  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::thread accept_thread_;
  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;
  bool stopped_ = false;  // guarded by connections_mutex_
};

}  // namespace hpb::service
