// Strict single-value JSON parser for the tuning service's line protocol.
//
// Every wire request is one JSON object on one line; a daemon must treat
// that line as hostile input. This parser therefore rejects everything
// RFC 8259 rejects — trailing garbage, duplicate object keys, unescaped
// control characters, bare NaN/Infinity literals, overlong inputs — and
// reports the byte offset of the first violation, so clients get a
// pointed parse_error instead of a silently misread request. Parsing
// never mutates service state: a request is validated completely before
// any verb runs.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace hpb::service {

/// Thrown for malformed JSON text; `offset` is the byte position of the
/// first violation. Distinct from hpb::Error so the wire layer can map it
/// to the parse_error code (validation failures of well-formed JSON are
/// bad_request instead).
class JsonParseError : public std::exception {
 public:
  JsonParseError(std::string message, std::size_t offset);
  [[nodiscard]] const char* what() const noexcept override {
    return message_.c_str();
  }
  [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

 private:
  std::string message_;
  std::size_t offset_ = 0;
};

/// One parsed JSON value. Object member order is not preserved (keys are
/// sorted); duplicate keys were rejected at parse time.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] const char* kind_name() const noexcept;

  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  /// Typed accessors; throw hpb::Error when the kind does not match.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::map<std::string, JsonValue>& as_object() const;

  /// Object member lookup; nullptr when absent (throws on non-objects).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;

  static JsonValue make_null();
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> items);
  static JsonValue make_object(std::map<std::string, JsonValue> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parse exactly one JSON value spanning the whole input (leading/trailing
/// whitespace allowed, anything else after the value is an error). Throws
/// JsonParseError. Nesting is capped (64 levels) so a hostile request
/// cannot overflow the stack.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace hpb::service
