#include "service/wire.hpp"

#include <cmath>
#include <deque>
#include <limits>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "obs/json_util.hpp"
#include "service/json.hpp"
#include "tabular/objective.hpp"

namespace hpb::service {

namespace {

/// Schema violation in a well-formed request; maps to bad_request.
class BadRequest : public std::exception {
 public:
  explicit BadRequest(std::string message) : message_(std::move(message)) {}
  [[nodiscard]] const char* what() const noexcept override {
    return message_.c_str();
  }

 private:
  std::string message_;
};

[[noreturn]] void bad(std::string message) {
  throw BadRequest(std::move(message));
}

}  // namespace

std::string error_response(std::string_view code, std::string_view message) {
  return std::string("{\"ok\":false,\"error\":{\"code\":\"") +
         obs::json_escape(code) + "\",\"message\":\"" +
         obs::json_escape(message) + "\"}}";
}

namespace {

/// Render a double as a JSON token; non-finite values (unreached best) as
/// null. obs::json_double would print bare `inf`/`nan`, which RFC 8259
/// forbids and our own parser rejects — null is the only wire-safe
/// spelling, with an explicit `*_finite:false` flag where the distinction
/// matters.
std::string json_number_or_null(double v) {
  return std::isfinite(v) ? obs::json_double(v) : "null";
}

std::string values_json(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) {
      out += ',';
    }
    out += json_number_or_null(values[i]);
  }
  out += ']';
  return out;
}

std::string status_json(const core::SessionStatus& s) {
  std::string out = "{\"evaluations\":" + std::to_string(s.evaluations);
  out += ",\"failed\":" + std::to_string(s.num_failed);
  out += ",\"rounds\":" + std::to_string(s.rounds);
  out += ",\"pending\":" + std::to_string(s.pending);
  out += ",\"best_value\":" + json_number_or_null(s.best_value);
  if (!std::isfinite(s.best_value)) {
    // Distinguish "no finite best yet" from a JSON null a sloppy client
    // reads as 0; the key is present exactly when best_value is null.
    out += ",\"best_value_finite\":false";
  }
  out += ",\"best_config\":" + values_json(s.best_config);
  out += std::string(",\"stopped\":") + (s.stopped ? "true" : "false");
  if (s.stopped) {
    out += std::string(",\"reason\":\"") + core::stop_reason_name(s.reason) +
           "\"";
  }
  if (s.degraded) {
    // Read-only after a journal append failure; the key is present exactly
    // when the session rejects mutating verbs (see SessionStatus).
    out += ",\"degraded\":true,\"degraded_reason\":\"" +
           obs::json_escape(s.degraded_reason) + "\"";
  }
  if (s.async) {
    out += ",\"mode\":\"async\",\"pending_tokens\":[";
    for (std::size_t i = 0; i < s.pending_tokens.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += std::to_string(s.pending_tokens[i]);
    }
    out += ']';
  }
  out += '}';
  return out;
}

/// Reject keys outside `allowed` — the strictness that catches typo'd and
/// stale clients instead of silently ignoring half their request.
void require_only_keys(const JsonValue& request,
                       std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : request.as_object()) {
    bool known = false;
    for (const std::string_view a : allowed) {
      known = known || key == a;
    }
    if (!known) {
      bad("unknown key '" + key + "'");
    }
  }
}

const JsonValue& require_key(const JsonValue& request, const std::string& key) {
  const JsonValue* v = request.find(key);
  if (v == nullptr) {
    bad("missing required key '" + key + "'");
  }
  return *v;
}

std::string require_string(const JsonValue& request, const std::string& key) {
  const JsonValue& v = require_key(request, key);
  if (!v.is_string()) {
    bad("'" + key + "' must be a string, got " + v.kind_name());
  }
  return v.as_string();
}

double number_field(const JsonValue& request, const std::string& key,
                    double fallback) {
  const JsonValue* v = request.find(key);
  if (v == nullptr) {
    return fallback;
  }
  if (!v->is_number()) {
    bad("'" + key + "' must be a number, got " + v->kind_name());
  }
  return v->as_number();
}

std::size_t size_field(const JsonValue& request, const std::string& key,
                       std::size_t fallback) {
  const double v =
      number_field(request, key, static_cast<double>(fallback));
  if (v < 0.0 || v != std::floor(v) || v > 1e15) {
    bad("'" + key + "' must be a non-negative integer");
  }
  return static_cast<std::size_t>(v);
}

std::uint64_t token_field(const JsonValue& item, const std::string& key) {
  const JsonValue& v = require_key(item, key);
  if (!v.is_number()) {
    bad("'" + key + "' must be a number, got " + v.kind_name());
  }
  const double d = v.as_number();
  if (d < 1.0 || d != std::floor(d) || d > 9e15) {
    bad("'" + key + "' must be a positive integer token");
  }
  return static_cast<std::uint64_t>(d);
}

std::string handle_create(core::SessionManager& manager,
                          const JsonValue& request) {
  require_only_keys(request,
                    {"verb", "session", "dataset", "method", "seed",
                     "batch_size", "max_evaluations", "stagnation_patience",
                     "target_value", "mode"});
  core::SessionSpec spec;
  spec.name = require_string(request, "session");
  spec.dataset = require_string(request, "dataset");
  if (request.find("method") != nullptr) {
    spec.method = require_string(request, "method");
  }
  spec.seed = static_cast<std::uint64_t>(size_field(request, "seed", 42));
  spec.batch_size = size_field(request, "batch_size", 1);
  spec.stop.max_evaluations = size_field(request, "max_evaluations", 100);
  spec.stop.stagnation_patience = size_field(request, "stagnation_patience", 0);
  spec.stop.target_value = number_field(
      request, "target_value", -std::numeric_limits<double>::infinity());
  if (request.find("mode") != nullptr) {
    const std::string mode = require_string(request, "mode");
    if (mode == "async") {
      spec.mode = core::SessionMode::kAsync;
    } else if (mode != "sync") {
      bad("'mode' must be \"sync\" or \"async\", got \"" + mode + "\"");
    }
  }
  manager.create(spec);
  return "{\"ok\":true}";
}

/// Optional idempotency key: a client-chosen string naming this request.
/// Empty when absent.
std::string rid_field(const JsonValue& request) {
  const JsonValue* v = request.find("rid");
  if (v == nullptr) {
    return {};
  }
  if (!v->is_string()) {
    bad("'rid' must be a string, got " + std::string(v->kind_name()));
  }
  const std::string& rid = v->as_string();
  if (rid.empty() || rid.size() > 64) {
    bad("'rid' must be 1..64 characters");
  }
  return rid;
}

std::string handle_suggest(core::SessionManager& manager,
                           const JsonValue& request) {
  require_only_keys(request, {"verb", "session", "count", "rid"});
  const std::string name = require_string(request, "session");
  const std::size_t count = size_field(request, "count", 0);
  const core::SessionManager::SuggestOutcome outcome =
      manager.suggest_any(name, count);
  std::string out = "{\"ok\":true,\"configs\":[";
  if (outcome.async) {
    for (std::size_t i = 0; i < outcome.suggestions.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += values_json(outcome.suggestions[i].config.values());
    }
    out += "],\"tokens\":[";
    for (std::size_t i = 0; i < outcome.suggestions.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += std::to_string(outcome.suggestions[i].token);
    }
  } else {
    for (std::size_t i = 0; i < outcome.configs.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += values_json(outcome.configs[i].values());
    }
  }
  out += "]}";
  return out;
}

core::Observation parse_result(const JsonValue& item, std::size_t index) {
  if (!item.is_object()) {
    bad("'results[" + std::to_string(index) + "]' must be an object, got " +
        item.kind_name());
  }
  require_only_keys(item, {"config", "y", "status"});
  core::Observation o;
  const JsonValue& config = require_key(item, "config");
  if (!config.is_array()) {
    bad("'results[" + std::to_string(index) + "].config' must be an array");
  }
  std::vector<double> values;
  values.reserve(config.as_array().size());
  for (const JsonValue& v : config.as_array()) {
    if (!v.is_number()) {
      bad("'results[" + std::to_string(index) +
          "].config' must contain only numbers");
    }
    values.push_back(v.as_number());
  }
  o.config = space::Configuration(std::move(values));
  if (item.find("status") != nullptr) {
    const std::string label = require_string(item, "status");
    try {
      o.status = tabular::status_from_name(label);
    } catch (const Error&) {
      bad("'results[" + std::to_string(index) + "].status' has unknown value '" +
          label + "' (expected ok, invalid, crashed, or timeout)");
    }
  }
  if (o.ok()) {
    const JsonValue& y = require_key(item, "y");
    if (!y.is_number()) {
      bad("'results[" + std::to_string(index) + "].y' must be a number");
    }
    o.y = y.as_number();
  } else {
    // Failed evaluations carry no value (NaN in the history, exactly as
    // the in-process engine records them); a y on a failed result is a
    // client bug worth flagging.
    if (item.find("y") != nullptr) {
      bad("'results[" + std::to_string(index) +
          "].y' must be omitted when status is not ok");
    }
    o.y = std::numeric_limits<double>::quiet_NaN();
  }
  return o;
}

core::AsyncResult parse_async_result(const JsonValue& item,
                                     std::size_t index) {
  require_only_keys(item, {"token", "y", "status"});
  core::AsyncResult r;
  r.token = token_field(item, "token");
  if (item.find("status") != nullptr) {
    const std::string label = require_string(item, "status");
    try {
      r.status = tabular::status_from_name(label);
    } catch (const Error&) {
      bad("'results[" + std::to_string(index) + "].status' has unknown value '" +
          label + "' (expected ok, invalid, crashed, or timeout)");
    }
  }
  if (r.ok()) {
    const JsonValue& y = require_key(item, "y");
    if (!y.is_number()) {
      bad("'results[" + std::to_string(index) + "].y' must be a number");
    }
    r.y = y.as_number();
  } else if (item.find("y") != nullptr) {
    bad("'results[" + std::to_string(index) +
        "].y' must be omitted when status is not ok");
  }
  return r;
}

std::string handle_observe(core::SessionManager& manager,
                           const JsonValue& request) {
  require_only_keys(request, {"verb", "session", "results", "rid"});
  const std::string name = require_string(request, "session");
  const JsonValue& results = require_key(request, "results");
  if (!results.is_array()) {
    bad("'results' must be an array, got " + std::string(results.kind_name()));
  }
  const std::vector<JsonValue>& items = results.as_array();
  for (const JsonValue& item : items) {
    if (!item.is_object()) {
      bad("'results' must contain objects");
    }
  }
  // Token-carrying results select the async path; config-carrying results
  // the sync path. The two shapes must not mix in one delivery.
  const bool async = !items.empty() && items[0].find("token") != nullptr;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if ((items[i].find("token") != nullptr) != async) {
      bad("'results' mixes token (async) and config (sync) entries; "
          "deliver one kind per observe");
    }
  }
  core::SessionStatus status;
  if (async) {
    std::vector<core::AsyncResult> parsed;
    parsed.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      parsed.push_back(parse_async_result(items[i], i));
    }
    status = manager.observe_async(name, parsed);
  } else {
    std::vector<core::Observation> observations;
    observations.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      observations.push_back(parse_result(items[i], i));
    }
    status = manager.observe(name, std::move(observations));
  }
  return "{\"ok\":true,\"status\":" + status_json(status) + "}";
}

std::string handle_cancel(core::SessionManager& manager,
                          const JsonValue& request) {
  require_only_keys(request, {"verb", "session", "tokens", "rid"});
  const std::string name = require_string(request, "session");
  std::vector<std::uint64_t> tokens;
  if (const JsonValue* v = request.find("tokens"); v != nullptr) {
    if (!v->is_array()) {
      bad("'tokens' must be an array, got " + std::string(v->kind_name()));
    }
    tokens.reserve(v->as_array().size());
    for (const JsonValue& t : v->as_array()) {
      if (!t.is_number()) {
        bad("'tokens' must contain only numbers");
      }
      const double d = t.as_number();
      if (d < 1.0 || d != std::floor(d) || d > 9e15) {
        bad("'tokens' must contain positive integer tokens");
      }
      tokens.push_back(static_cast<std::uint64_t>(d));
    }
  }
  const std::size_t cancelled = manager.cancel(name, tokens);
  return "{\"ok\":true,\"cancelled\":" + std::to_string(cancelled) + "}";
}

std::string handle_status(core::SessionManager& manager,
                          const JsonValue& request) {
  require_only_keys(request, {"verb", "session"});
  const std::string name = require_string(request, "session");
  return "{\"ok\":true,\"status\":" + status_json(manager.status(name)) + "}";
}

std::string handle_close(core::SessionManager& manager,
                         const JsonValue& request) {
  require_only_keys(request, {"verb", "session"});
  const std::string name = require_string(request, "session");
  manager.close(name);
  return "{\"ok\":true}";
}

std::string handle_health(core::SessionManager& manager,
                          const JsonValue& request) {
  require_only_keys(request, {"verb"});
  const core::ManagerHealth h = manager.health();
  std::string out = "{\"ok\":true,\"health\":{";
  out += "\"resident\":" + std::to_string(h.resident);
  out += ",\"degraded\":" + std::to_string(h.degraded);
  out += ",\"created\":" + std::to_string(h.created);
  out += ",\"evicted\":" + std::to_string(h.evicted);
  out += ",\"resumed\":" + std::to_string(h.resumed);
  out += ",\"closed\":" + std::to_string(h.closed);
  out += ",\"adopted\":" + std::to_string(h.adopted);
  out += ",\"quarantined\":" + std::to_string(h.quarantined);
  out += "}}";
  return out;
}

}  // namespace

/// One session's replay window plus the mutex that makes its retried verbs
/// exactly-once: the winner of a concurrent same-rid race executes with
/// the lock held, the loser then finds the recorded response.
struct SessionRids {
  std::mutex m;
  std::deque<std::pair<std::string, std::string>> entries;  // (rid, response)
};

/// Striped session → SessionRids map. Stripe mutexes guard only the map;
/// execution holds the per-session mutex, so verbs on different sessions
/// never serialize here.
struct WireService::RidState {
  static constexpr std::size_t kStripes = 16;
  struct Stripe {
    std::mutex m;
    std::unordered_map<std::string, std::shared_ptr<SessionRids>> map;
  };
  Stripe stripes[kStripes];

  Stripe& stripe_for(const std::string& session) {
    return stripes[std::hash<std::string>{}(session) % kStripes];
  }

  std::shared_ptr<SessionRids> get(const std::string& session) {
    Stripe& s = stripe_for(session);
    std::lock_guard<std::mutex> lock(s.m);
    std::shared_ptr<SessionRids>& slot = s.map[session];
    if (slot == nullptr) {
      slot = std::make_shared<SessionRids>();
    }
    return slot;
  }

  void forget(const std::string& session) {
    Stripe& s = stripe_for(session);
    std::lock_guard<std::mutex> lock(s.m);
    s.map.erase(session);
  }
};

WireService::WireService(core::SessionManager& manager)
    : manager_(manager), rids_(std::make_unique<RidState>()) {}

WireService::~WireService() = default;

std::string WireService::replay_or_execute(
    const std::string& session, const std::string& rid,
    const std::function<std::string()>& run) {
  const std::shared_ptr<SessionRids> rids = rids_->get(session);
  std::lock_guard<std::mutex> lock(rids->m);
  for (const auto& [seen_rid, response] : rids->entries) {
    if (seen_rid == rid) {
      return response;  // byte-identical replay, no re-execution
    }
  }
  // Only successful responses are recorded: an error response means the
  // verb did not take effect (or left the session in a state that will
  // report the same error again), so a retry may re-execute — e.g. an
  // `overloaded` shed retried after capacity frees up must not replay the
  // shed.
  const std::string response = run();
  rids->entries.emplace_back(rid, response);
  if (rids->entries.size() > kRidsPerSession) {
    rids->entries.pop_front();
  }
  return response;
}

void WireService::forget_rids(const std::string& session) {
  rids_->forget(session);
}

std::string WireService::handle_line(std::string_view line) {
  try {
    JsonValue request;
    try {
      request = parse_json(line);
    } catch (const JsonParseError& e) {
      return error_response(error_code::kParseError, e.what());
    }
    if (!request.is_object()) {
      bad(std::string("request must be a JSON object, got ") +
          request.kind_name());
    }
    const JsonValue* verb = request.find("verb");
    if (verb == nullptr || !verb->is_string()) {
      bad("missing required string key 'verb'");
    }
    const std::string& name = verb->as_string();
    if (name == "create") {
      return handle_create(manager_, request);
    }
    if (name == "suggest" || name == "observe" || name == "cancel") {
      const std::string session = require_string(request, "session");
      const std::string rid = rid_field(request);
      const auto run = [&]() {
        if (name == "suggest") {
          return handle_suggest(manager_, request);
        }
        if (name == "observe") {
          return handle_observe(manager_, request);
        }
        return handle_cancel(manager_, request);
      };
      return rid.empty() ? run() : replay_or_execute(session, rid, run);
    }
    if (name == "status") {
      return handle_status(manager_, request);
    }
    if (name == "close") {
      const std::string response = handle_close(manager_, request);
      forget_rids(require_string(request, "session"));
      return response;
    }
    if (name == "health") {
      return handle_health(manager_, request);
    }
    return error_response(error_code::kUnknownVerb,
                          "unknown verb '" + name +
                              "' (expected create, suggest, observe, cancel, "
                              "status, close, or health)");
  } catch (const BadRequest& e) {
    return error_response(error_code::kBadRequest, e.what());
  } catch (const OverloadError& e) {
    // Admission control shed the request before any state change; the
    // client should back off and retry (same rid is safe).
    return error_response(error_code::kOverloaded, e.what());
  } catch (const Error& e) {
    // The manager or session rejected the verb (unknown session,
    // out-of-order observe, double close, ...): a client error, reported
    // structurally; the daemon and the session both stay consistent.
    return error_response(error_code::kSessionError, e.what());
  } catch (const std::exception& e) {
    return error_response(error_code::kInternal, e.what());
  }
}

}  // namespace hpb::service
