// Synthetic performance surfaces.
//
// The paper evaluates tuning methods on frozen datasets of measured runs
// (Kripke, HYPRE, LULESH, OpenAtom). Those measurements are not available,
// so src/apps builds stand-in datasets from composable multiplicative
// surfaces defined here:
//
//   raw(x) = base · Π_i  m_i(x_i)            (per-parameter main effects)
//               · Π_ij I_ij(x_i, x_j)         (pairwise interactions)
//               · exp(σ · N(key(x)))          (frozen per-config noise)
//
// Products of per-parameter factors are log-normally distributed across the
// space, giving the heavy right tail with *few configurations near the
// optimum* that §V-A/B describes — the property that separates HiPerBOt
// from GEIST/random in the paper. The noise term is keyed on the dataset
// seed and the configuration ordinal, so a dataset is a pure function of its
// seed: every tuner sees identical values, exactly like a frozen table of
// measurements.
//
// Calibration then maps raw values onto the paper's quoted anchors (e.g.
// best 8.43 s and expert 15.2 s for Kripke) with an affine transform, which
// preserves the distribution shape.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "space/parameter_space.hpp"
#include "tabular/tabular_objective.hpp"

namespace hpb::surface {

/// Immutable multiplicative surface over a finite-or-not parameter space.
class Surface {
 public:
  /// Raw (uncalibrated) value at configuration c; strictly positive.
  [[nodiscard]] double raw(const space::Configuration& c) const;

  [[nodiscard]] const space::ParameterSpace& space() const { return *space_; }
  [[nodiscard]] space::SpacePtr space_ptr() const { return space_; }

 private:
  friend class SurfaceBuilder;
  Surface() = default;

  struct MainEffect {
    std::size_t param;
    std::vector<double> multipliers;  // discrete: one per level
    std::function<double(double)> fn;  // continuous: multiplier of value
  };
  struct Interaction {
    std::size_t param_a;
    std::size_t param_b;
    std::vector<double> multipliers;  // levels_a × levels_b, row-major
  };

  space::SpacePtr space_;
  double base_ = 1.0;
  double noise_sigma_ = 0.0;
  std::uint64_t seed_ = 0;
  std::vector<MainEffect> main_effects_;
  std::vector<Interaction> interactions_;
};

/// Fluent builder for Surface. Parameters are addressed by name. Randomized
/// effects ("strength" variants) are derived deterministically from the
/// builder seed, so surfaces are reproducible.
class SurfaceBuilder {
 public:
  SurfaceBuilder(space::SpacePtr space, std::uint64_t seed);

  /// Explicit per-level multipliers for a discrete parameter.
  SurfaceBuilder& main_effect(const std::string& param,
                              std::vector<double> level_multipliers);

  /// Random per-level multipliers exp(strength · z_l); larger strength makes
  /// the parameter more important (larger JS divergence in Table I).
  SurfaceBuilder& random_main_effect(const std::string& param,
                                     double strength);

  /// Multiplier as a function of a continuous parameter's value.
  SurfaceBuilder& continuous_effect(const std::string& param,
                                    std::function<double(double)> fn);

  /// Explicit interaction table (levels_a × levels_b multipliers, row-major).
  SurfaceBuilder& interaction_table(const std::string& param_a,
                                    const std::string& param_b,
                                    std::vector<double> multipliers);

  /// Random pairwise interaction exp(strength · z_{ab}) per level pair.
  SurfaceBuilder& random_interaction(const std::string& param_a,
                                     const std::string& param_b,
                                     double strength);

  /// Lognormal measurement-noise magnitude (σ of log-value).
  SurfaceBuilder& noise(double sigma);

  /// Overall scale of the surface.
  SurfaceBuilder& base(double value);

  [[nodiscard]] Surface build() const;

 private:
  Surface surface_;
};

/// Enumerate a finite space, evaluate the surface, and affinely map values
/// so that min == best_target and max == worst_target.
[[nodiscard]] tabular::TabularObjective calibrate_to_range(
    std::string name, const Surface& surface, double best_target,
    double worst_target);

/// Enumerate, evaluate, and affinely map values so that min == best_target
/// and the given anchor configuration lands exactly on anchor_target
/// (used to hit the paper's "expert choice" / "-O3 default" numbers).
[[nodiscard]] tabular::TabularObjective calibrate_to_anchor(
    std::string name, const Surface& surface, double best_target,
    const space::Configuration& anchor, double anchor_target);

/// Enumerate, evaluate, and affinely map values so that min == best_target
/// and the q-quantile of the raw values lands on quantile_target. Unlike
/// calibrate_to_range this is insensitive to the extreme right tail of a
/// lognormal surface, so the bulk of the distribution keeps a realistic
/// distance from the optimum.
[[nodiscard]] tabular::TabularObjective calibrate_to_quantile(
    std::string name, const Surface& surface, double best_target, double q,
    double quantile_target);

}  // namespace hpb::surface
