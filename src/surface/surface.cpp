#include <algorithm>

#include "stats/quantile.hpp"
#include "surface/surface.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace hpb::surface {

double Surface::raw(const space::Configuration& c) const {
  HPB_REQUIRE(c.size() == space_->num_params(), "raw: size mismatch");
  double value = base_;
  for (const auto& effect : main_effects_) {
    if (effect.fn) {
      value *= effect.fn(c[effect.param]);
    } else {
      value *= effect.multipliers[c.level(effect.param)];
    }
  }
  for (const auto& inter : interactions_) {
    const std::size_t la = c.level(inter.param_a);
    const std::size_t lb = c.level(inter.param_b);
    const std::size_t cols = space_->param(inter.param_b).num_levels();
    value *= inter.multipliers[la * cols + lb];
  }
  if (noise_sigma_ > 0.0) {
    // Key the frozen noise on (seed, configuration identity). For finite
    // spaces the ordinal is a perfect identity; continuous parameters fold
    // their bit patterns into the key instead.
    std::uint64_t key = seed_;
    for (std::size_t i = 0; i < c.size(); ++i) {
      std::uint64_t bits;
      const double v = c[i];
      static_assert(sizeof(bits) == sizeof(v));
      __builtin_memcpy(&bits, &v, sizeof(bits));
      key = hash_combine(key, bits);
    }
    value *= std::exp(noise_sigma_ * hash_to_normal(key));
  }
  return value;
}

SurfaceBuilder::SurfaceBuilder(space::SpacePtr space, std::uint64_t seed) {
  HPB_REQUIRE(space != nullptr, "SurfaceBuilder: null space");
  surface_.space_ = std::move(space);
  surface_.seed_ = seed;
}

SurfaceBuilder& SurfaceBuilder::main_effect(
    const std::string& param, std::vector<double> level_multipliers) {
  const std::size_t idx = surface_.space_->index_of(param);
  const auto& p = surface_.space_->param(idx);
  HPB_REQUIRE(p.is_discrete(), "main_effect: discrete parameters only");
  HPB_REQUIRE(level_multipliers.size() == p.num_levels(),
              "main_effect: multiplier count must match level count");
  for (double m : level_multipliers) {
    HPB_REQUIRE(m > 0.0, "main_effect: multipliers must be positive");
  }
  surface_.main_effects_.push_back(
      {idx, std::move(level_multipliers), nullptr});
  return *this;
}

SurfaceBuilder& SurfaceBuilder::random_main_effect(const std::string& param,
                                                   double strength) {
  const std::size_t idx = surface_.space_->index_of(param);
  const auto& p = surface_.space_->param(idx);
  HPB_REQUIRE(p.is_discrete(), "random_main_effect: discrete only");
  std::vector<double> mult(p.num_levels());
  for (std::size_t l = 0; l < mult.size(); ++l) {
    const std::uint64_t key =
        hash_combine(hash_combine(surface_.seed_, 0x1111 + idx), l);
    mult[l] = std::exp(strength * hash_to_normal(key));
  }
  surface_.main_effects_.push_back({idx, std::move(mult), nullptr});
  return *this;
}

SurfaceBuilder& SurfaceBuilder::continuous_effect(
    const std::string& param, std::function<double(double)> fn) {
  const std::size_t idx = surface_.space_->index_of(param);
  HPB_REQUIRE(!surface_.space_->param(idx).is_discrete(),
              "continuous_effect: continuous parameters only");
  HPB_REQUIRE(static_cast<bool>(fn), "continuous_effect: empty function");
  surface_.main_effects_.push_back({idx, {}, std::move(fn)});
  return *this;
}

SurfaceBuilder& SurfaceBuilder::interaction_table(
    const std::string& param_a, const std::string& param_b,
    std::vector<double> multipliers) {
  const std::size_t ia = surface_.space_->index_of(param_a);
  const std::size_t ib = surface_.space_->index_of(param_b);
  HPB_REQUIRE(ia != ib, "interaction_table: parameters must differ");
  const auto& pa = surface_.space_->param(ia);
  const auto& pb = surface_.space_->param(ib);
  HPB_REQUIRE(pa.is_discrete() && pb.is_discrete(),
              "interaction_table: discrete parameters only");
  HPB_REQUIRE(multipliers.size() == pa.num_levels() * pb.num_levels(),
              "interaction_table: table size must be levels_a * levels_b");
  for (double m : multipliers) {
    HPB_REQUIRE(m > 0.0, "interaction_table: multipliers must be positive");
  }
  surface_.interactions_.push_back({ia, ib, std::move(multipliers)});
  return *this;
}

SurfaceBuilder& SurfaceBuilder::random_interaction(const std::string& param_a,
                                                   const std::string& param_b,
                                                   double strength) {
  const std::size_t ia = surface_.space_->index_of(param_a);
  const std::size_t ib = surface_.space_->index_of(param_b);
  HPB_REQUIRE(ia != ib, "random_interaction: parameters must differ");
  const auto& pa = surface_.space_->param(ia);
  const auto& pb = surface_.space_->param(ib);
  HPB_REQUIRE(pa.is_discrete() && pb.is_discrete(),
              "random_interaction: discrete parameters only");
  std::vector<double> mult(pa.num_levels() * pb.num_levels());
  for (std::size_t la = 0; la < pa.num_levels(); ++la) {
    for (std::size_t lb = 0; lb < pb.num_levels(); ++lb) {
      const std::uint64_t key = hash_combine(
          hash_combine(hash_combine(surface_.seed_, 0x2222 + ia * 131 + ib),
                       la),
          lb);
      mult[la * pb.num_levels() + lb] = std::exp(strength * hash_to_normal(key));
    }
  }
  surface_.interactions_.push_back({ia, ib, std::move(mult)});
  return *this;
}

SurfaceBuilder& SurfaceBuilder::noise(double sigma) {
  HPB_REQUIRE(sigma >= 0.0, "noise: sigma must be non-negative");
  surface_.noise_sigma_ = sigma;
  return *this;
}

SurfaceBuilder& SurfaceBuilder::base(double value) {
  HPB_REQUIRE(value > 0.0, "base: must be positive");
  surface_.base_ = value;
  return *this;
}

Surface SurfaceBuilder::build() const { return surface_; }

namespace {

tabular::TabularObjective calibrate_impl(std::string name,
                                         const Surface& surface, double scale,
                                         double offset) {
  return tabular::TabularObjective::from_function(
      std::move(name), surface.space_ptr(),
      [&surface, scale, offset](const space::Configuration& c) {
        return offset + scale * surface.raw(c);
      });
}

}  // namespace

tabular::TabularObjective calibrate_to_range(std::string name,
                                             const Surface& surface,
                                             double best_target,
                                             double worst_target) {
  HPB_REQUIRE(best_target < worst_target,
              "calibrate_to_range: best must be < worst");
  // First pass to find raw min/max over the valid space.
  double raw_min = 0.0, raw_max = 0.0;
  bool first = true;
  for (const auto& c : surface.space().enumerate()) {
    const double v = surface.raw(c);
    if (first) {
      raw_min = raw_max = v;
      first = false;
    } else {
      raw_min = std::min(raw_min, v);
      raw_max = std::max(raw_max, v);
    }
  }
  HPB_REQUIRE(!first, "calibrate_to_range: empty space");
  HPB_REQUIRE(raw_max > raw_min, "calibrate_to_range: degenerate surface");
  const double scale = (worst_target - best_target) / (raw_max - raw_min);
  const double offset = best_target - scale * raw_min;
  return calibrate_impl(std::move(name), surface, scale, offset);
}

tabular::TabularObjective calibrate_to_anchor(
    std::string name, const Surface& surface, double best_target,
    const space::Configuration& anchor, double anchor_target) {
  HPB_REQUIRE(best_target < anchor_target,
              "calibrate_to_anchor: best must be < anchor value");
  double raw_min = 0.0;
  bool first = true;
  for (const auto& c : surface.space().enumerate()) {
    const double v = surface.raw(c);
    raw_min = first ? v : std::min(raw_min, v);
    first = false;
  }
  HPB_REQUIRE(!first, "calibrate_to_anchor: empty space");
  const double raw_anchor = surface.raw(anchor);
  HPB_REQUIRE(raw_anchor > raw_min,
              "calibrate_to_anchor: anchor must not be the optimum");
  const double scale = (anchor_target - best_target) / (raw_anchor - raw_min);
  const double offset = best_target - scale * raw_min;
  return calibrate_impl(std::move(name), surface, scale, offset);
}

tabular::TabularObjective calibrate_to_quantile(std::string name,
                                                const Surface& surface,
                                                double best_target, double q,
                                                double quantile_target) {
  HPB_REQUIRE(best_target < quantile_target,
              "calibrate_to_quantile: best must be < quantile target");
  HPB_REQUIRE(q > 0.0 && q <= 1.0, "calibrate_to_quantile: q in (0,1]");
  std::vector<double> raws;
  for (const auto& c : surface.space().enumerate()) {
    raws.push_back(surface.raw(c));
  }
  HPB_REQUIRE(!raws.empty(), "calibrate_to_quantile: empty space");
  const double raw_min = *std::min_element(raws.begin(), raws.end());
  const double raw_q = stats::quantile(raws, q);
  HPB_REQUIRE(raw_q > raw_min, "calibrate_to_quantile: degenerate surface");
  const double scale = (quantile_target - best_target) / (raw_q - raw_min);
  const double offset = best_target - scale * raw_min;
  return calibrate_impl(std::move(name), surface, scale, offset);
}

}  // namespace hpb::surface
