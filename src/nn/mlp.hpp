// Minimal multilayer perceptron with Adam, used to re-implement the PerfNet
// transfer-learning baseline [Marathe et al., SC'17] at simulator scale:
// a regression network mapping one-hot encoded configurations to predicted
// runtime, pre-trained on the source domain and fine-tuned on a small
// number of target-domain samples.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace hpb::nn {

struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};

struct TrainConfig {
  AdamConfig adam;
  std::size_t batch_size = 32;
  std::size_t epochs = 100;
};

/// Fully connected network with ReLU hidden activations and a linear scalar
/// output head, trained with mean-squared-error loss.
class Mlp {
 public:
  /// sizes = {input, hidden..., output}; at least {in, out}. Weights use
  /// He initialization drawn from rng.
  Mlp(std::vector<std::size_t> sizes, Rng& rng);

  [[nodiscard]] std::size_t input_size() const noexcept { return sizes_.front(); }
  [[nodiscard]] std::size_t output_size() const noexcept { return sizes_.back(); }
  [[nodiscard]] std::size_t num_parameters() const noexcept;

  /// Forward pass; x.size() must equal input_size(). Returns the outputs.
  [[nodiscard]] std::vector<double> forward(std::span<const double> x) const;

  /// Scalar convenience for single-output networks.
  [[nodiscard]] double predict(std::span<const double> x) const;

  /// One epoch of minibatch Adam on (X, y): X is n×input, y is n×output
  /// flattened row-major (or n for scalar output). Returns mean MSE loss
  /// over the epoch. Rows are shuffled with rng.
  double train_epoch(const linalg::Matrix& x, std::span<const double> y,
                     const TrainConfig& config, Rng& rng);

  /// Run config.epochs epochs; returns final epoch's mean loss.
  double fit(const linalg::Matrix& x, std::span<const double> y,
             const TrainConfig& config, Rng& rng);

  /// MSE loss over a dataset without updating weights.
  [[nodiscard]] double evaluate_loss(const linalg::Matrix& x,
                                     std::span<const double> y) const;

  /// Loss and analytic gradient w.r.t. all parameters for a single example;
  /// exposed for gradient-check tests. Gradient layout matches
  /// flatten_parameters().
  [[nodiscard]] std::pair<double, std::vector<double>> loss_and_gradient(
      std::span<const double> x, std::span<const double> y) const;

  /// Copy all weights/biases into a flat vector (and back), layer by layer.
  [[nodiscard]] std::vector<double> flatten_parameters() const;
  void set_parameters(std::span<const double> flat);

 private:
  struct Layer {
    linalg::Matrix w;        // out × in
    linalg::Vector b;        // out
    bool relu = true;        // false for the output layer
  };

  struct AdamState {
    std::vector<double> m;
    std::vector<double> v;
    std::size_t step = 0;
  };

  /// Forward keeping pre-activations for backprop.
  void forward_cached(std::span<const double> x,
                      std::vector<linalg::Vector>& activations) const;

  /// Accumulate the gradient for one example into grad (flat layout).
  /// Returns the example's MSE loss.
  double accumulate_gradient(std::span<const double> x,
                             std::span<const double> y,
                             std::vector<double>& grad) const;

  void adam_step(std::span<const double> grad, const AdamConfig& config);

  std::vector<std::size_t> sizes_;
  std::vector<Layer> layers_;
  AdamState adam_;
};

}  // namespace hpb::nn
