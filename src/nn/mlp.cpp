#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace hpb::nn {

Mlp::Mlp(std::vector<std::size_t> sizes, Rng& rng) : sizes_(std::move(sizes)) {
  HPB_REQUIRE(sizes_.size() >= 2, "Mlp: need at least input and output sizes");
  for (std::size_t s : sizes_) {
    HPB_REQUIRE(s > 0, "Mlp: layer sizes must be positive");
  }
  layers_.reserve(sizes_.size() - 1);
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    Layer layer;
    layer.w = linalg::Matrix(sizes_[l + 1], sizes_[l]);
    layer.b = linalg::Vector(sizes_[l + 1], 0.0);
    layer.relu = (l + 2 < sizes_.size());  // output layer is linear
    const double scale = std::sqrt(2.0 / static_cast<double>(sizes_[l]));
    for (double& w : layer.w.flat()) {
      w = scale * rng.normal();
    }
    layers_.push_back(std::move(layer));
  }
  const std::size_t n = num_parameters();
  adam_.m.assign(n, 0.0);
  adam_.v.assign(n, 0.0);
}

std::size_t Mlp::num_parameters() const noexcept {
  std::size_t n = 0;
  for (const auto& layer : layers_) {
    n += layer.w.rows() * layer.w.cols() + layer.b.size();
  }
  return n;
}

void Mlp::forward_cached(std::span<const double> x,
                         std::vector<linalg::Vector>& activations) const {
  HPB_REQUIRE(x.size() == sizes_.front(), "forward: input size mismatch");
  activations.clear();
  activations.emplace_back(x.begin(), x.end());
  for (const auto& layer : layers_) {
    linalg::Vector z = linalg::matvec(layer.w, activations.back());
    for (std::size_t i = 0; i < z.size(); ++i) {
      z[i] += layer.b[i];
      if (layer.relu && z[i] < 0.0) {
        z[i] = 0.0;
      }
    }
    activations.push_back(std::move(z));
  }
}

std::vector<double> Mlp::forward(std::span<const double> x) const {
  std::vector<linalg::Vector> activations;
  forward_cached(x, activations);
  return activations.back();
}

double Mlp::predict(std::span<const double> x) const {
  HPB_REQUIRE(sizes_.back() == 1, "predict: scalar-output networks only");
  return forward(x)[0];
}

double Mlp::accumulate_gradient(std::span<const double> x,
                                std::span<const double> y,
                                std::vector<double>& grad) const {
  HPB_REQUIRE(y.size() == sizes_.back(), "gradient: target size mismatch");
  std::vector<linalg::Vector> acts;
  forward_cached(x, acts);

  // MSE loss: L = (1/k) Σ (out_i - y_i)^2; dL/dout_i = (2/k)(out_i - y_i).
  const auto& out = acts.back();
  double loss = 0.0;
  linalg::Vector delta(out.size());
  const double k = static_cast<double>(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double diff = out[i] - y[i];
    loss += diff * diff / k;
    delta[i] = 2.0 * diff / k;
  }

  // Backpropagate layer by layer, writing into the flat gradient. Compute
  // per-layer flat offsets first (layout: layer0 W, layer0 b, layer1 W, ...).
  std::vector<std::size_t> offsets(layers_.size());
  std::size_t off = 0;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    offsets[l] = off;
    off += layers_[l].w.rows() * layers_[l].w.cols() + layers_[l].b.size();
  }

  for (std::size_t li = layers_.size(); li-- > 0;) {
    const auto& layer = layers_[li];
    const auto& input = acts[li];
    const auto& output = acts[li + 1];
    // ReLU gate: activations store post-ReLU values, so output == 0 marks a
    // clipped unit whose gradient is zero.
    if (layer.relu) {
      for (std::size_t i = 0; i < delta.size(); ++i) {
        if (output[i] <= 0.0) {
          delta[i] = 0.0;
        }
      }
    }
    double* gw = grad.data() + offsets[li];
    double* gb = gw + layer.w.rows() * layer.w.cols();
    for (std::size_t r = 0; r < layer.w.rows(); ++r) {
      const double d = delta[r];
      if (d != 0.0) {
        for (std::size_t c = 0; c < layer.w.cols(); ++c) {
          gw[r * layer.w.cols() + c] += d * input[c];
        }
      }
      gb[r] += d;
    }
    if (li > 0) {
      delta = linalg::matvec_transposed(layer.w, delta);
    }
  }
  return loss;
}

std::pair<double, std::vector<double>> Mlp::loss_and_gradient(
    std::span<const double> x, std::span<const double> y) const {
  std::vector<double> grad(num_parameters(), 0.0);
  const double loss = accumulate_gradient(x, y, grad);
  return {loss, std::move(grad)};
}

void Mlp::adam_step(std::span<const double> grad, const AdamConfig& config) {
  ++adam_.step;
  const double b1t = 1.0 - std::pow(config.beta1, static_cast<double>(adam_.step));
  const double b2t = 1.0 - std::pow(config.beta2, static_cast<double>(adam_.step));
  std::size_t gi = 0;
  for (auto& layer : layers_) {
    auto apply = [&](double& param) {
      const double g = grad[gi];
      adam_.m[gi] = config.beta1 * adam_.m[gi] + (1.0 - config.beta1) * g;
      adam_.v[gi] = config.beta2 * adam_.v[gi] + (1.0 - config.beta2) * g * g;
      const double mhat = adam_.m[gi] / b1t;
      const double vhat = adam_.v[gi] / b2t;
      param -= config.learning_rate * mhat / (std::sqrt(vhat) + config.epsilon);
      ++gi;
    };
    for (double& w : layer.w.flat()) {
      apply(w);
    }
    for (double& b : layer.b) {
      apply(b);
    }
  }
}

double Mlp::train_epoch(const linalg::Matrix& x, std::span<const double> y,
                        const TrainConfig& config, Rng& rng) {
  const std::size_t n = x.rows();
  const std::size_t out = sizes_.back();
  HPB_REQUIRE(x.cols() == sizes_.front(), "train_epoch: feature mismatch");
  HPB_REQUIRE(y.size() == n * out, "train_epoch: target size mismatch");
  HPB_REQUIRE(n > 0, "train_epoch: empty dataset");

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  std::vector<double> grad(num_parameters(), 0.0);
  double total_loss = 0.0;
  const std::size_t batch = std::max<std::size_t>(1, config.batch_size);
  for (std::size_t start = 0; start < n; start += batch) {
    const std::size_t end = std::min(start + batch, n);
    std::fill(grad.begin(), grad.end(), 0.0);
    for (std::size_t bi = start; bi < end; ++bi) {
      const std::size_t row = order[bi];
      total_loss += accumulate_gradient(
          x.row(row), std::span<const double>(y.data() + row * out, out), grad);
    }
    const double inv = 1.0 / static_cast<double>(end - start);
    for (double& g : grad) {
      g *= inv;
    }
    adam_step(grad, config.adam);
  }
  return total_loss / static_cast<double>(n);
}

double Mlp::fit(const linalg::Matrix& x, std::span<const double> y,
                const TrainConfig& config, Rng& rng) {
  double loss = 0.0;
  for (std::size_t e = 0; e < config.epochs; ++e) {
    loss = train_epoch(x, y, config, rng);
  }
  return loss;
}

double Mlp::evaluate_loss(const linalg::Matrix& x,
                          std::span<const double> y) const {
  const std::size_t n = x.rows();
  const std::size_t out = sizes_.back();
  HPB_REQUIRE(y.size() == n * out, "evaluate_loss: target size mismatch");
  HPB_REQUIRE(n > 0, "evaluate_loss: empty dataset");
  double total = 0.0;
  const double k = static_cast<double>(out);
  for (std::size_t r = 0; r < n; ++r) {
    const auto pred = forward(x.row(r));
    for (std::size_t i = 0; i < out; ++i) {
      const double diff = pred[i] - y[r * out + i];
      total += diff * diff / k;
    }
  }
  return total / static_cast<double>(n);
}

std::vector<double> Mlp::flatten_parameters() const {
  std::vector<double> flat;
  flat.reserve(num_parameters());
  for (const auto& layer : layers_) {
    const auto w = layer.w.flat();
    flat.insert(flat.end(), w.begin(), w.end());
    flat.insert(flat.end(), layer.b.begin(), layer.b.end());
  }
  return flat;
}

void Mlp::set_parameters(std::span<const double> flat) {
  HPB_REQUIRE(flat.size() == num_parameters(),
              "set_parameters: size mismatch");
  std::size_t i = 0;
  for (auto& layer : layers_) {
    for (double& w : layer.w.flat()) {
      w = flat[i++];
    }
    for (double& b : layer.b) {
      b = flat[i++];
    }
  }
}

}  // namespace hpb::nn
