// TabularObjective: a fully enumerated finite parameter space with one
// pre-computed objective value per valid configuration.
//
// This mirrors the paper's evaluation protocol: the Kripke/HYPRE/LULESH/
// OpenAtom "datasets" are tables of (configuration, measured value) pairs,
// and every tuning method draws its observations from the same table.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "space/parameter_space.hpp"
#include "tabular/objective.hpp"

namespace hpb::tabular {

class TabularObjective final : public Objective {
 public:
  /// Build from an already-enumerated list of configurations and values.
  TabularObjective(std::string name, space::SpacePtr space,
                   std::vector<space::Configuration> configs,
                   std::vector<double> values);

  /// Build by enumerating the (finite) space and evaluating fn at each
  /// valid configuration.
  static TabularObjective from_function(
      std::string name, space::SpacePtr space,
      const std::function<double(const space::Configuration&)>& fn);

  // Objective interface -----------------------------------------------------
  [[nodiscard]] const space::ParameterSpace& space() const override {
    return *space_;
  }
  [[nodiscard]] double evaluate(const space::Configuration& c) override {
    return value_of(c);
  }
  [[nodiscard]] std::string name() const override { return name_; }

  // Dataset access ----------------------------------------------------------
  [[nodiscard]] space::SpacePtr space_ptr() const noexcept { return space_; }
  [[nodiscard]] std::size_t size() const noexcept { return configs_.size(); }
  [[nodiscard]] const space::Configuration& config(std::size_t i) const {
    HPB_REQUIRE(i < configs_.size(), "config: index out of range");
    return configs_[i];
  }
  [[nodiscard]] double value(std::size_t i) const {
    HPB_REQUIRE(i < values_.size(), "value: index out of range");
    return values_[i];
  }
  [[nodiscard]] std::span<const double> values() const noexcept {
    return values_;
  }
  [[nodiscard]] std::span<const space::Configuration> configs() const noexcept {
    return configs_;
  }

  /// Dense index of a configuration; throws if the configuration is not in
  /// the table (i.e. violates a constraint or has an out-of-range level).
  [[nodiscard]] std::size_t index_of(const space::Configuration& c) const;

  /// Dense index if present.
  [[nodiscard]] std::optional<std::size_t> find(
      const space::Configuration& c) const;

  /// Objective value for a configuration (lookup, never re-computed).
  [[nodiscard]] double value_of(const space::Configuration& c) const {
    return values_[index_of(c)];
  }

  // Dataset statistics (used by the evaluation metrics of §IV-B) -----------
  [[nodiscard]] double best_value() const noexcept { return best_value_; }
  [[nodiscard]] std::size_t best_index() const noexcept { return best_index_; }
  [[nodiscard]] const space::Configuration& best_config() const {
    return configs_[best_index_];
  }
  [[nodiscard]] double worst_value() const noexcept { return worst_value_; }

  /// Value of the best ℓ-percentile configuration (y_ℓ in eq. 11);
  /// ell in (0, 100].
  [[nodiscard]] double percentile_value(double ell) const;

  /// Number of configurations with f(x) <= y (set cardinalities in
  /// eq. 11–12).
  [[nodiscard]] std::size_t count_leq(double y) const;

  /// Write the dataset as CSV (one row per configuration) to `path`.
  void write_csv(const std::string& path) const;

 private:
  std::string name_;
  space::SpacePtr space_;
  std::vector<space::Configuration> configs_;
  std::vector<double> values_;
  std::unordered_map<std::uint64_t, std::size_t> by_ordinal_;
  double best_value_ = 0.0;
  double worst_value_ = 0.0;
  std::size_t best_index_ = 0;
};

}  // namespace hpb::tabular
