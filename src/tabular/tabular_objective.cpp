#include "tabular/tabular_objective.hpp"

#include <algorithm>
#include <fstream>

#include "stats/quantile.hpp"

namespace hpb::tabular {

TabularObjective::TabularObjective(std::string name, space::SpacePtr space,
                                   std::vector<space::Configuration> configs,
                                   std::vector<double> values)
    : name_(std::move(name)),
      space_(std::move(space)),
      configs_(std::move(configs)),
      values_(std::move(values)) {
  HPB_REQUIRE(space_ != nullptr, "TabularObjective: null space");
  HPB_REQUIRE(space_->is_finite(), "TabularObjective: space must be finite");
  HPB_REQUIRE(configs_.size() == values_.size(),
              "TabularObjective: configs/values size mismatch");
  HPB_REQUIRE(!configs_.empty(), "TabularObjective: empty dataset");
  by_ordinal_.reserve(configs_.size());
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    const auto [it, inserted] =
        by_ordinal_.emplace(space_->ordinal_of(configs_[i]), i);
    HPB_REQUIRE(inserted, "TabularObjective: duplicate configuration");
  }
  best_index_ = static_cast<std::size_t>(
      std::min_element(values_.begin(), values_.end()) - values_.begin());
  best_value_ = values_[best_index_];
  worst_value_ = *std::max_element(values_.begin(), values_.end());
}

TabularObjective TabularObjective::from_function(
    std::string name, space::SpacePtr space,
    const std::function<double(const space::Configuration&)>& fn) {
  HPB_REQUIRE(space != nullptr, "from_function: null space");
  std::vector<space::Configuration> configs = space->enumerate();
  HPB_REQUIRE(!configs.empty(), "from_function: constraints reject all");
  std::vector<double> values;
  values.reserve(configs.size());
  for (const auto& c : configs) {
    values.push_back(fn(c));
  }
  return TabularObjective(std::move(name), std::move(space),
                          std::move(configs), std::move(values));
}

std::size_t TabularObjective::index_of(const space::Configuration& c) const {
  const auto found = find(c);
  HPB_REQUIRE(found.has_value(),
              "index_of: configuration not in dataset (constraint violation?)");
  return *found;
}

std::optional<std::size_t> TabularObjective::find(
    const space::Configuration& c) const {
  const auto it = by_ordinal_.find(space_->ordinal_of(c));
  if (it == by_ordinal_.end()) {
    return std::nullopt;
  }
  return it->second;
}

double TabularObjective::percentile_value(double ell) const {
  HPB_REQUIRE(ell > 0.0 && ell <= 100.0,
              "percentile_value: ell must be in (0, 100]");
  return stats::quantile(values_, ell / 100.0);
}

std::size_t TabularObjective::count_leq(double y) const {
  return static_cast<std::size_t>(std::count_if(
      values_.begin(), values_.end(), [y](double v) { return v <= y; }));
}

void TabularObjective::write_csv(const std::string& path) const {
  std::ofstream out(path);
  HPB_REQUIRE(out.good(), "write_csv: cannot open '" + path + "'");
  for (std::size_t p = 0; p < space_->num_params(); ++p) {
    out << space_->param(p).name() << ',';
  }
  out << "objective\n";
  for (std::size_t i = 0; i < configs_.size(); ++i) {
    const auto& c = configs_[i];
    for (std::size_t p = 0; p < space_->num_params(); ++p) {
      if (space_->param(p).is_discrete()) {
        out << space_->param(p).level_label(c.level(p));
      } else {
        out << c[p];
      }
      out << ',';
    }
    out << values_[i] << '\n';
  }
}

}  // namespace hpb::tabular
