#include "tabular/fault_injection.hpp"

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace hpb::tabular {
namespace {

// Domain-separation salts so the region, crash, and hang streams are
// independent.
constexpr std::uint64_t kRegionSalt = 0x9ab1e5ULL;
constexpr std::uint64_t kKindSalt = 0x7e57ab1eULL;
constexpr std::uint64_t kCrashSalt = 0xc4a54ULL;
constexpr std::uint64_t kHangSalt = 0x4a4eULL;

}  // namespace

FaultInjectingObjective::FaultInjectingObjective(Objective& inner,
                                                 FaultConfig config)
    : inner_(&inner), config_(config) {
  HPB_REQUIRE(config_.fail_rate >= 0.0 && config_.fail_rate < 1.0,
              "FaultInjectingObjective: fail_rate must be in [0, 1)");
  HPB_REQUIRE(config_.crash_rate >= 0.0 && config_.crash_rate < 1.0,
              "FaultInjectingObjective: crash_rate must be in [0, 1)");
  HPB_REQUIRE(config_.hang_rate >= 0.0 && config_.hang_rate < 1.0,
              "FaultInjectingObjective: hang_rate must be in [0, 1)");
}

std::uint64_t FaultInjectingObjective::key_of(
    const space::Configuration& c) const {
  if (inner_->space().is_finite()) {
    return inner_->space().ordinal_of(c);
  }
  std::uint64_t key = 0x5eedULL;
  for (std::size_t p = 0; p < c.size(); ++p) {
    std::uint64_t bits = 0;
    const double v = c[p];
    std::memcpy(&bits, &v, sizeof(bits));
    key = hash_combine(key, bits);
  }
  return key;
}

bool FaultInjectingObjective::in_failure_region(
    const space::Configuration& c) const {
  if (config_.fail_rate <= 0.0) {
    return false;
  }
  const std::uint64_t key = hash_combine(
      hash_combine(config_.seed, kRegionSalt), key_of(c));
  return hash_to_unit(splitmix64(key)) < config_.fail_rate;
}

bool FaultInjectingObjective::in_hang_region(
    const space::Configuration& c) const {
  if (config_.hang_rate <= 0.0) {
    return false;
  }
  const std::uint64_t key =
      hash_combine(hash_combine(config_.seed, kHangSalt), key_of(c));
  return hash_to_unit(splitmix64(key)) < config_.hang_rate;
}

EvalResult FaultInjectingObjective::evaluate_result(
    const space::Configuration& c) {
  return evaluate_result(c, CancellationToken{});
}

EvalResult FaultInjectingObjective::evaluate_result(
    const space::Configuration& c, const CancellationToken& token) {
  const std::uint64_t key = key_of(c);
  if (config_.crash_rate > 0.0) {
    std::uint64_t attempt = 0;
    {
      std::scoped_lock lock(mutex_);
      attempt = attempts_[key]++;
    }
    const std::uint64_t crash_key = hash_combine(
        hash_combine(hash_combine(config_.seed, kCrashSalt), key), attempt);
    if (hash_to_unit(splitmix64(crash_key)) < config_.crash_rate) {
      std::scoped_lock lock(mutex_);
      ++failures_injected_;
      return EvalResult::failure(EvalStatus::kCrashed);
    }
  }
  if (in_hang_region(c)) {
    // A real hang never returns; the cooperative stand-in sleeps until the
    // watchdog deadline (or a shutdown signal) cancels it. A token that can
    // never cancel gets the timeout verdict immediately instead of wedging
    // the worker forever.
    while (token.can_cancel() && !token.cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::scoped_lock lock(mutex_);
    ++failures_injected_;
    return EvalResult::failure(EvalStatus::kTimeout);
  }
  if (in_failure_region(c)) {
    const std::uint64_t kind_key = hash_combine(
        hash_combine(config_.seed, kKindSalt), key);
    const EvalStatus status = hash_to_unit(splitmix64(kind_key)) < 0.5
                                  ? EvalStatus::kInvalid
                                  : EvalStatus::kTimeout;
    std::scoped_lock lock(mutex_);
    ++failures_injected_;
    return EvalResult::failure(status);
  }
  return inner_->evaluate_result(c, token);
}

double FaultInjectingObjective::evaluate(const space::Configuration& c) {
  const EvalResult r = evaluate_result(c);
  HPB_REQUIRE(r.ok(), "FaultInjectingObjective::evaluate: configuration "
                      "failed (" +
                          std::string(status_name(r.status)) +
                          "); use evaluate_result for the failure path");
  return r.value;
}

std::size_t FaultInjectingObjective::failures_injected() const {
  std::scoped_lock lock(mutex_);
  return failures_injected_;
}

namespace {

double rate_from_env(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) {
    return fallback;
  }
  const std::string raw(env);
  auto fail = [&](const char* why) {
    throw Error(std::string(name) + "=\"" + raw + "\": " + why +
                " (expected a rate in [0, 1))");
  };
  const char* p = env;
  while (std::isspace(static_cast<unsigned char>(*p))) {
    ++p;
  }
  if (*p == '\0') {
    fail("empty value");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(p, &end);
  if (end == p || errno == ERANGE) {
    fail("not a number");
  }
  while (std::isspace(static_cast<unsigned char>(*end))) {
    ++end;
  }
  if (*end != '\0') {
    fail("trailing garbage");
  }
  if (!(value >= 0.0) || value >= 1.0) {
    fail("out of range");
  }
  return value;
}

}  // namespace

double fail_rate_from_env(double fallback) {
  return rate_from_env("HPB_FAIL_RATE", fallback);
}

double crash_rate_from_env(double fallback) {
  return rate_from_env("HPB_CRASH_RATE", fallback);
}

double hang_rate_from_env(double fallback) {
  return rate_from_env("HPB_HANG_RATE", fallback);
}

}  // namespace hpb::tabular
