// Objective adapters: maximization (all tuners minimize, eq. 6), evaluation
// counting, and simulated evaluation-noise injection for robustness
// studies.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "tabular/objective.hpp"

namespace hpb::tabular {

/// Turns a maximization problem into the minimization form every tuner
/// expects: evaluate() returns the negated inner value. Report results by
/// negating back.
class MaximizeAdapter final : public Objective {
 public:
  explicit MaximizeAdapter(Objective& inner) : inner_(&inner) {}

  [[nodiscard]] const space::ParameterSpace& space() const override {
    return inner_->space();
  }
  [[nodiscard]] double evaluate(const space::Configuration& c) override {
    return -inner_->evaluate(c);
  }
  [[nodiscard]] EvalResult evaluate_result(
      const space::Configuration& c) override {
    EvalResult r = inner_->evaluate_result(c);
    if (r.ok()) {
      r.value = -r.value;
    }
    return r;
  }
  [[nodiscard]] std::string name() const override {
    return inner_->name() + "(maximized)";
  }

 private:
  Objective* inner_;
};

/// Counts evaluations of the wrapped objective — used by harnesses and
/// tests to assert evaluation budgets are honored exactly.
class CountingObjective final : public Objective {
 public:
  explicit CountingObjective(Objective& inner) : inner_(&inner) {}

  [[nodiscard]] const space::ParameterSpace& space() const override {
    return inner_->space();
  }
  [[nodiscard]] double evaluate(const space::Configuration& c) override {
    ++count_;
    return inner_->evaluate(c);
  }
  [[nodiscard]] EvalResult evaluate_result(
      const space::Configuration& c) override {
    ++count_;  // failed attempts spend budget too
    return inner_->evaluate_result(c);
  }
  [[nodiscard]] std::string name() const override { return inner_->name(); }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

 private:
  Objective* inner_;
  std::size_t count_ = 0;
};

/// Adds zero-mean multiplicative Gaussian noise to each evaluation:
/// y' = y · (1 + σ·z). Models run-to-run variability of real measurements;
/// bench/ablation_noise sweeps σ to probe how much measurement noise the
/// quantile-based surrogate tolerates.
class NoisyObjective final : public Objective {
 public:
  NoisyObjective(Objective& inner, double sigma, std::uint64_t seed)
      : inner_(&inner), sigma_(sigma), rng_(seed) {
    HPB_REQUIRE(sigma >= 0.0, "NoisyObjective: sigma must be >= 0");
  }

  [[nodiscard]] const space::ParameterSpace& space() const override {
    return inner_->space();
  }
  [[nodiscard]] double evaluate(const space::Configuration& c) override {
    const double y = inner_->evaluate(c);
    return y * (1.0 + sigma_ * rng_.normal());
  }
  [[nodiscard]] EvalResult evaluate_result(
      const space::Configuration& c) override {
    EvalResult r = inner_->evaluate_result(c);
    if (r.ok()) {
      r.value *= 1.0 + sigma_ * rng_.normal();
    }
    return r;
  }
  [[nodiscard]] std::string name() const override {
    return inner_->name() + "(noisy)";
  }

 private:
  Objective* inner_;
  double sigma_;
  Rng rng_;
};

}  // namespace hpb::tabular
