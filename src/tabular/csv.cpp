#include "tabular/csv.hpp"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <istream>
#include <map>
#include <sstream>

#include "common/error.hpp"

namespace hpb::tabular {
namespace {

std::vector<std::string> split_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream is(line);
  while (std::getline(is, field, ',')) {
    // Trim surrounding whitespace.
    const auto begin = field.find_first_not_of(" \t\r");
    const auto end = field.find_last_not_of(" \t\r");
    fields.push_back(begin == std::string::npos
                         ? std::string{}
                         : field.substr(begin, end - begin + 1));
  }
  if (!line.empty() && line.back() == ',') {
    fields.emplace_back();
  }
  return fields;
}

bool parse_number(const std::string& s, double& out) {
  if (s.empty()) {
    return false;
  }
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc{} && ptr == end;
}

}  // namespace

TabularObjective load_csv_stream(std::istream& in, std::string name) {
  std::string line;
  HPB_REQUIRE(static_cast<bool>(std::getline(in, line)),
              "load_csv: missing header row");
  const std::vector<std::string> header = split_csv_line(line);
  HPB_REQUIRE(header.size() >= 2,
              "load_csv: need at least one parameter column plus the "
              "objective column");
  const std::size_t n_params = header.size() - 1;

  // Read all rows as strings first; column typing needs the full column.
  std::vector<std::vector<std::string>> rows;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;  // skip blank lines
    }
    std::vector<std::string> fields = split_csv_line(line);
    HPB_REQUIRE(fields.size() == header.size(),
                "load_csv: row " + std::to_string(line_no) + " has " +
                    std::to_string(fields.size()) + " fields, expected " +
                    std::to_string(header.size()));
    rows.push_back(std::move(fields));
  }
  HPB_REQUIRE(!rows.empty(), "load_csv: no data rows");

  // Type each parameter column and collect its levels.
  auto space = std::make_shared<space::ParameterSpace>();
  // level_of[p] maps the column's string to a level index.
  std::vector<std::map<std::string, std::size_t>> level_of(n_params);
  for (std::size_t p = 0; p < n_params; ++p) {
    bool all_numeric = true;
    std::vector<double> numeric_values;
    std::vector<std::string> labels;  // first-appearance order
    std::map<std::string, double> parsed;
    for (const auto& row : rows) {
      const std::string& cell = row[p];
      if (parsed.contains(cell) || level_of[p].contains(cell)) {
        continue;
      }
      double value = 0.0;
      if (parse_number(cell, value)) {
        parsed.emplace(cell, value);
      } else {
        all_numeric = false;
      }
      level_of[p].emplace(cell, 0);  // placeholder; filled below
      labels.push_back(cell);
    }
    if (all_numeric) {
      // Sorted distinct numeric levels.
      std::vector<std::pair<double, std::string>> order;
      order.reserve(labels.size());
      for (const auto& label : labels) {
        order.emplace_back(parsed.at(label), label);
      }
      std::sort(order.begin(), order.end());
      std::vector<double> values;
      values.reserve(order.size());
      for (std::size_t l = 0; l < order.size(); ++l) {
        level_of[p][order[l].second] = l;
        values.push_back(order[l].first);
      }
      space->add(space::Parameter::categorical_numeric(header[p], values));
    } else {
      for (std::size_t l = 0; l < labels.size(); ++l) {
        level_of[p][labels[l]] = l;
      }
      space->add(space::Parameter::categorical(header[p], labels));
    }
  }

  // Build configurations and objective values.
  std::vector<space::Configuration> configs;
  std::vector<double> values;
  configs.reserve(rows.size());
  values.reserve(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::vector<double> levels(n_params);
    for (std::size_t p = 0; p < n_params; ++p) {
      levels[p] = static_cast<double>(level_of[p].at(rows[r][p]));
    }
    double objective = 0.0;
    HPB_REQUIRE(parse_number(rows[r].back(), objective),
                "load_csv: non-numeric objective value '" + rows[r].back() +
                    "'");
    configs.emplace_back(std::move(levels));
    values.push_back(objective);
  }
  return TabularObjective(std::move(name), std::move(space),
                          std::move(configs), std::move(values));
}

TabularObjective load_csv(const std::string& path, std::string name) {
  std::ifstream in(path);
  HPB_REQUIRE(in.good(), "load_csv: cannot open '" + path + "'");
  if (name.empty()) {
    name = std::filesystem::path(path).stem().string();
  }
  return load_csv_stream(in, std::move(name));
}

}  // namespace hpb::tabular
