// Deterministic fault injection for failure-path testing.
//
// Wraps any Objective and makes a hash-seeded subset of the space fail,
// mimicking the invalid/crashing/timing-out configurations real HPC
// applications exhibit (Kripke nestings rejected by the decomposition,
// HYPRE solver/smoother combinations that diverge, OOMing OpenAtom maps):
//
//   * failure regions — configurations whose keyed hash falls below
//     `fail_rate` permanently fail (split deterministically between
//     kInvalid and kTimeout), modeling constraint violations the space
//     definition does not know about;
//   * transient crashes — every evaluation attempt of any configuration
//     independently crashes (kCrashed) with probability `crash_rate`,
//     keyed on (seed, configuration, attempt number), so a retry of the
//     same configuration can succeed and a rerun of the whole experiment
//     reproduces the exact same crash sequence;
//
//   * hangs — configurations whose keyed hash falls below `hang_rate`
//     never return on their own: the evaluation sleeps until the
//     CancellationToken cancels it (the engine's watchdog deadline or a
//     shutdown signal), then reports kTimeout. Hangs exercise the
//     wall-clock watchdog; with a token that can never cancel, the
//     injector reports kTimeout immediately rather than blocking the
//     worker forever.
//
// Everything is a pure function of the wrapper seed and the configuration,
// so tuning runs remain bitwise reproducible: same seed + same rates =>
// identical history. With both rates 0 the wrapper is a transparent
// pass-through.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "tabular/objective.hpp"

namespace hpb::tabular {

struct FaultConfig {
  /// Fraction of the space inside a permanent failure region, in [0, 1).
  double fail_rate = 0.0;
  /// Per-attempt transient crash probability, in [0, 1).
  double crash_rate = 0.0;
  /// Fraction of the space that hangs until cancelled, in [0, 1).
  double hang_rate = 0.0;
  /// Hash seed for the failure regions and crash sequence.
  std::uint64_t seed = 0x0f0f0f0fULL;
};

/// Objective wrapper injecting deterministic failures (see file comment).
/// Thread-safe when the wrapped objective is: the per-configuration attempt
/// counters that drive transient crashes are mutex-protected.
class FaultInjectingObjective final : public Objective {
 public:
  FaultInjectingObjective(Objective& inner, FaultConfig config);

  [[nodiscard]] const space::ParameterSpace& space() const override {
    return inner_->space();
  }
  /// Throws on a failed configuration — the numeric entry point cannot
  /// report an outcome. Failure-aware callers use evaluate_result.
  [[nodiscard]] double evaluate(const space::Configuration& c) override;
  [[nodiscard]] EvalResult evaluate_result(
      const space::Configuration& c) override;
  [[nodiscard]] EvalResult evaluate_result(
      const space::Configuration& c,
      const CancellationToken& token) override;
  [[nodiscard]] std::string name() const override {
    return inner_->name() + "(faulty)";
  }

  /// True when c lies in a permanent failure region (kInvalid/kTimeout).
  [[nodiscard]] bool in_failure_region(const space::Configuration& c) const;

  /// True when c is an injected hang (sleeps until the token cancels).
  [[nodiscard]] bool in_hang_region(const space::Configuration& c) const;

  /// Total failed attempts injected so far (all statuses).
  [[nodiscard]] std::size_t failures_injected() const;

 private:
  [[nodiscard]] std::uint64_t key_of(const space::Configuration& c) const;

  Objective* inner_;
  FaultConfig config_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::uint64_t> attempts_;
  std::size_t failures_injected_ = 0;
};

/// Permanent-failure-region rate from the HPB_FAIL_RATE environment
/// variable, else `fallback`. Strictly parsed double in [0, 1); rejects
/// garbage with a clear error instead of silently misparsing it.
[[nodiscard]] double fail_rate_from_env(double fallback = 0.0);

/// Transient crash rate from HPB_CRASH_RATE, same parsing.
[[nodiscard]] double crash_rate_from_env(double fallback = 0.0);

/// Hang-region rate from HPB_HANG_RATE, same parsing.
[[nodiscard]] double hang_rate_from_env(double fallback = 0.0);

}  // namespace hpb::tabular
