// CSV dataset loading: turn a table of measured runs into a
// TabularObjective, so users can tune their own data with the CLI or the
// library without writing C++ for the parameter space.
//
// Expected format (matches TabularObjective::write_csv):
//   - first row: parameter names, with the objective as the LAST column;
//   - one row per measured configuration;
//   - a column whose values all parse as numbers becomes a numeric
//     categorical parameter (levels = the sorted distinct values); any
//     other column becomes a labeled categorical parameter (levels = the
//     distinct strings in order of first appearance);
//   - the objective column must be numeric;
//   - duplicate configurations are rejected.
#pragma once

#include <iosfwd>
#include <string>

#include "tabular/tabular_objective.hpp"

namespace hpb::tabular {

/// Load a dataset from a CSV file; `name` defaults to the file stem.
[[nodiscard]] TabularObjective load_csv(const std::string& path,
                                        std::string name = "");

/// Load a dataset from an already-open stream (exposed for tests).
[[nodiscard]] TabularObjective load_csv_stream(std::istream& in,
                                               std::string name);

}  // namespace hpb::tabular
