// Objective interface: the expensive black-box f(x) that tuners minimize
// (eq. 6). Implementations include the enumerated TabularObjective (frozen
// datasets, as in the paper's evaluation) and live objectives that actually
// run a kernel (examples/tune_stencil).
//
// Real HPC evaluations do not always return a number: configurations can be
// invalid for the application, crash/OOM on the cluster, or exceed their
// time allocation. EvalResult carries that outcome explicitly so the tuning
// stack can survive failed configurations instead of aborting the run.
#pragma once

#include <cmath>
#include <string>

#include "common/cancellation.hpp"
#include "space/parameter_space.hpp"

namespace hpb::tabular {

/// Outcome of one objective evaluation.
enum class EvalStatus {
  kOk,       // evaluation succeeded; value is the metric to minimize
  kInvalid,  // configuration rejected by the application (never succeeds)
  kCrashed,  // evaluation crashed/OOMed; possibly transient, retry may help
  kTimeout,  // evaluation exceeded its time allocation
};

/// Short lower-case label ("ok", "invalid", "crashed", "timeout") used in
/// reports and the history CSV status column.
[[nodiscard]] const char* status_name(EvalStatus status) noexcept;

/// Inverse of status_name; throws on an unknown label.
[[nodiscard]] EvalStatus status_from_name(const std::string& name);

/// One evaluation outcome: a finite value when status == kOk, NaN otherwise.
struct EvalResult {
  double value = 0.0;
  EvalStatus status = EvalStatus::kOk;

  [[nodiscard]] bool ok() const noexcept { return status == EvalStatus::kOk; }

  [[nodiscard]] static EvalResult success(double value) noexcept {
    return {value, EvalStatus::kOk};
  }
  [[nodiscard]] static EvalResult failure(EvalStatus status) noexcept {
    return {std::nan(""), status};
  }
};

class Objective {
 public:
  virtual ~Objective() = default;

  /// The space of tunable parameters.
  [[nodiscard]] virtual const space::ParameterSpace& space() const = 0;

  /// Run the "application" at configuration c and return the metric to
  /// minimize (execution time, energy, ...). May be expensive. Objectives
  /// that can fail should throw here and report through evaluate_result —
  /// this entry point promises a number.
  [[nodiscard]] virtual double evaluate(const space::Configuration& c) = 0;

  /// Failure-aware evaluation: run the application and report the outcome.
  /// The default wraps evaluate() as an always-successful result; objectives
  /// with invalid/crashing configurations (fault injection, live runs)
  /// override this. The TuningEngine drives this entry point.
  [[nodiscard]] virtual EvalResult evaluate_result(
      const space::Configuration& c) {
    return EvalResult::success(evaluate(c));
  }

  /// Cancellable evaluation: the engine's watchdog passes a token carrying
  /// its per-evaluation deadline and the session's stop flag. Long-running
  /// objectives should poll token.cancelled() between units of work and
  /// return kTimeout early; the default ignores the token, which is always
  /// correct for cheap evaluations (the engine still converts overdue
  /// results to kTimeout after the fact).
  [[nodiscard]] virtual EvalResult evaluate_result(
      const space::Configuration& c, const CancellationToken& token) {
    (void)token;
    return evaluate_result(c);
  }

  /// Short identifier used in reports.
  [[nodiscard]] virtual std::string name() const { return "objective"; }
};

}  // namespace hpb::tabular
