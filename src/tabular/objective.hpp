// Objective interface: the expensive black-box f(x) that tuners minimize
// (eq. 6). Implementations include the enumerated TabularObjective (frozen
// datasets, as in the paper's evaluation) and live objectives that actually
// run a kernel (examples/tune_stencil).
#pragma once

#include <string>

#include "space/parameter_space.hpp"

namespace hpb::tabular {

class Objective {
 public:
  virtual ~Objective() = default;

  /// The space of tunable parameters.
  [[nodiscard]] virtual const space::ParameterSpace& space() const = 0;

  /// Run the "application" at configuration c and return the metric to
  /// minimize (execution time, energy, ...). May be expensive.
  [[nodiscard]] virtual double evaluate(const space::Configuration& c) = 0;

  /// Short identifier used in reports.
  [[nodiscard]] virtual std::string name() const { return "objective"; }
};

}  // namespace hpb::tabular
