#include "tabular/objective.hpp"

#include "common/error.hpp"

namespace hpb::tabular {

const char* status_name(EvalStatus status) noexcept {
  switch (status) {
    case EvalStatus::kOk:
      return "ok";
    case EvalStatus::kInvalid:
      return "invalid";
    case EvalStatus::kCrashed:
      return "crashed";
    case EvalStatus::kTimeout:
      return "timeout";
  }
  return "unknown";
}

EvalStatus status_from_name(const std::string& name) {
  if (name == "ok") {
    return EvalStatus::kOk;
  }
  if (name == "invalid") {
    return EvalStatus::kInvalid;
  }
  if (name == "crashed") {
    return EvalStatus::kCrashed;
  }
  if (name == "timeout") {
    return EvalStatus::kTimeout;
  }
  HPB_REQUIRE(false, "status_from_name: unknown evaluation status '" + name +
                         "' (expected ok, invalid, crashed, or timeout)");
  return EvalStatus::kOk;  // unreachable
}

}  // namespace hpb::tabular
