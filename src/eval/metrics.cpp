#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace hpb::eval {
namespace {

/// Count observations among the first n with value <= threshold, and the
/// dataset total with value <= threshold; return the ratio.
double recall_with_threshold(const tabular::TabularObjective& dataset,
                             std::span<const core::Observation> history,
                             std::size_t n, double threshold) {
  const std::size_t denom = dataset.count_leq(threshold);
  HPB_REQUIRE(denom > 0, "recall: no configurations under threshold");
  n = std::min(n, history.size());
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (history[i].ok() && history[i].y <= threshold) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(denom);
}

}  // namespace

double best_of_first(std::span<const core::Observation> history,
                     std::size_t n) {
  HPB_REQUIRE(!history.empty(), "best_of_first: empty history");
  n = std::min(n, history.size());
  // Failed observations carry NaN and must not poison the minimum.
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (history[i].ok()) {
      best = std::min(best, history[i].y);
    }
  }
  HPB_REQUIRE(std::isfinite(best),
              "best_of_first: no successful observation in the first n");
  return best;
}

double recall_percentile(const tabular::TabularObjective& dataset,
                         std::span<const core::Observation> history,
                         std::size_t n, double ell) {
  return recall_with_threshold(dataset, history, n,
                               dataset.percentile_value(ell));
}

double recall_tolerance(const tabular::TabularObjective& dataset,
                        std::span<const core::Observation> history,
                        std::size_t n, double gamma) {
  HPB_REQUIRE(gamma >= 0.0, "recall_tolerance: gamma must be >= 0");
  return recall_with_threshold(dataset, history, n,
                               (1.0 + gamma) * dataset.best_value());
}

double recall_tolerance_indices(const tabular::TabularObjective& dataset,
                                std::span<const std::size_t> selected,
                                double gamma) {
  HPB_REQUIRE(gamma >= 0.0, "recall_tolerance_indices: gamma must be >= 0");
  const double threshold = (1.0 + gamma) * dataset.best_value();
  const std::size_t denom = dataset.count_leq(threshold);
  HPB_REQUIRE(denom > 0, "recall: no configurations under threshold");
  std::size_t hits = 0;
  for (std::size_t idx : selected) {
    if (dataset.value(idx) <= threshold) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(denom);
}

std::size_t good_case_count(const tabular::TabularObjective& dataset,
                            double gamma) {
  return dataset.count_leq((1.0 + gamma) * dataset.best_value());
}

}  // namespace hpb::eval
