#include "eval/report.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace hpb::eval {

std::string format_mean_std(const stats::RunningStats& s) {
  std::ostringstream os;
  const double magnitude = std::abs(s.mean());
  const int precision = magnitude >= 100.0 ? 0 : (magnitude >= 1.0 ? 2 : 3);
  os << std::fixed << std::setprecision(precision) << s.mean() << " ± "
     << std::setprecision(precision) << s.stddev();
  return os.str();
}

void print_curves(std::ostream& os, const std::string& title,
                  const std::vector<MethodCurve>& curves,
                  std::size_t dataset_size, double exhaustive_best,
                  bool show_recall) {
  HPB_REQUIRE(!curves.empty(), "print_curves: no curves");
  const auto& sizes = curves.front().sample_sizes;
  for (const auto& c : curves) {
    HPB_REQUIRE(c.sample_sizes == sizes,
                "print_curves: mismatched sample sizes across methods");
  }

  os << "== " << title << " ==\n";
  os << std::left << std::setw(14) << "sample size";
  for (std::size_t n : sizes) {
    std::ostringstream head;
    head << std::fixed << std::setprecision(1)
         << 100.0 * static_cast<double>(n) / static_cast<double>(dataset_size)
         << "% (" << n << ")";
    os << std::setw(18) << head.str();
  }
  os << '\n';

  os << "-- best configuration found --\n";
  if (exhaustive_best >= 0.0) {
    os << std::left << std::setw(14) << "Exhaustive";
    for (std::size_t k = 0; k < sizes.size(); ++k) {
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(2) << exhaustive_best;
      os << std::setw(18) << cell.str();
    }
    os << '\n';
  }
  for (const auto& c : curves) {
    os << std::left << std::setw(14) << c.method;
    for (const auto& cell : c.best_value) {
      os << std::setw(18) << format_mean_std(cell);
    }
    os << '\n';
  }
  if (show_recall) {
    os << "-- recall --\n";
    for (const auto& c : curves) {
      os << std::left << std::setw(14) << c.method;
      for (const auto& cell : c.recall) {
        os << std::setw(18) << format_mean_std(cell);
      }
      os << '\n';
    }
  }
  os << '\n';
}

void write_curves_csv(const std::string& path,
                      const std::vector<MethodCurve>& curves) {
  std::ofstream out(path);
  HPB_REQUIRE(out.good(), "write_curves_csv: cannot open '" + path + "'");
  out << "method,metric,sample_size,mean,std\n";
  for (const auto& c : curves) {
    for (std::size_t k = 0; k < c.sample_sizes.size(); ++k) {
      out << c.method << ",best," << c.sample_sizes[k] << ','
          << c.best_value[k].mean() << ',' << c.best_value[k].stddev() << '\n';
      out << c.method << ",recall," << c.sample_sizes[k] << ','
          << c.recall[k].mean() << ',' << c.recall[k].stddev() << '\n';
    }
  }
}

}  // namespace hpb::eval
