#include "eval/methods.hpp"

#include "baselines/boosted_trees.hpp"
#include "baselines/gp_tuner.hpp"
#include "baselines/local_search.hpp"
#include "baselines/random_search.hpp"
#include "baselines/ridge_tuner.hpp"

namespace hpb::eval {

StandardMethods make_standard_methods(
    const tabular::TabularObjective& dataset,
    const core::HiPerBOtConfig& hiperbot_config,
    const baselines::GeistConfig& geist_config) {
  StandardMethods methods;
  methods.pool = std::make_shared<const std::vector<space::Configuration>>(
      dataset.configs().begin(), dataset.configs().end());
  methods.graph = std::make_shared<const baselines::ConfigGraph>(
      dataset.space(), *methods.pool);

  const space::SpacePtr space = dataset.space_ptr();
  const auto pool = methods.pool;
  const auto graph = methods.graph;

  methods.hiperbot = [space, pool, hiperbot_config](std::uint64_t seed) {
    return std::make_unique<core::HiPerBOt>(space, hiperbot_config, seed,
                                            pool);
  };
  methods.geist = [space, pool, graph, geist_config](std::uint64_t seed) {
    return std::make_unique<baselines::Geist>(space, geist_config, seed, pool,
                                              graph);
  };
  methods.random = [space, pool](std::uint64_t seed) {
    return std::make_unique<baselines::RandomSearch>(space, seed, pool);
  };
  return methods;
}

const std::vector<std::string>& tuner_names() {
  static const std::vector<std::string> names = {
      "hiperbot", "geist", "random",    "gp",        "anneal",
      "hillclimb", "brt",  "ridge",     "exhaustive"};
  return names;
}

std::unique_ptr<core::Tuner> make_named_tuner(
    const std::string& name, const tabular::TabularObjective& dataset,
    std::uint64_t seed) {
  const space::SpacePtr space = dataset.space_ptr();
  const auto pool = std::make_shared<const std::vector<space::Configuration>>(
      dataset.configs().begin(), dataset.configs().end());
  if (name == "hiperbot") {
    return std::make_unique<core::HiPerBOt>(space, core::HiPerBOtConfig{},
                                            seed, pool);
  }
  if (name == "geist") {
    return std::make_unique<baselines::Geist>(space, baselines::GeistConfig{},
                                              seed, pool, nullptr);
  }
  if (name == "random") {
    return std::make_unique<baselines::RandomSearch>(space, seed, pool);
  }
  if (name == "gp") {
    return std::make_unique<baselines::GpTuner>(space, baselines::GpConfig{},
                                                seed, pool);
  }
  if (name == "anneal") {
    return std::make_unique<baselines::SimulatedAnnealing>(
        space, baselines::AnnealingConfig{}, seed);
  }
  if (name == "hillclimb") {
    return std::make_unique<baselines::HillClimbing>(
        space, baselines::HillClimbConfig{}, seed);
  }
  if (name == "brt") {
    return std::make_unique<baselines::BrtTuner>(
        space, baselines::BrtTunerConfig{}, seed, pool);
  }
  if (name == "ridge") {
    return std::make_unique<baselines::RidgeTuner>(
        space, baselines::RidgeConfig{}, seed, pool);
  }
  if (name == "exhaustive") {
    return std::make_unique<baselines::ExhaustiveTuner>(space, pool);
  }
  HPB_REQUIRE(false, "make_named_tuner: unknown tuner '" + name +
                         "' (expected one of hiperbot, geist, random, gp, "
                         "anneal, hillclimb, brt, ridge, exhaustive)");
  return nullptr;  // unreachable
}

}  // namespace hpb::eval
