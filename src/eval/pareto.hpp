// Bi-objective utilities for time/energy tuning (the paper tunes Kripke
// for execution time and separately for energy under power capping; this
// extension tunes both at once via scalarization and evaluates against the
// exact Pareto front).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace hpb::eval {

/// Indices of the non-dominated points of (f1[i], f2[i]) under joint
/// minimization, sorted by ascending f1. A point is dominated when another
/// point is <= in both objectives and < in at least one.
[[nodiscard]] std::vector<std::size_t> pareto_front(
    std::span<const double> f1, std::span<const double> f2);

/// 2-D hypervolume (area dominated by the front, up to the reference
/// point). Points beyond the reference contribute nothing. Standard
/// quality indicator for bi-objective optimizers.
[[nodiscard]] double hypervolume_2d(std::span<const double> f1,
                                    std::span<const double> f2,
                                    double ref1, double ref2);

}  // namespace hpb::eval
