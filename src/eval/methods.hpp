// Pre-wired tuner factories for the methods compared in §V (HiPerBOt,
// GEIST, Random), sharing one enumerated candidate pool and one GEIST
// graph across all replicated runs of a dataset.
#pragma once

#include <memory>

#include "baselines/config_graph.hpp"
#include "baselines/geist.hpp"
#include "core/hiperbot.hpp"
#include "eval/experiment.hpp"
#include "tabular/tabular_objective.hpp"

namespace hpb::eval {

struct StandardMethods {
  std::shared_ptr<const std::vector<space::Configuration>> pool;
  std::shared_ptr<const baselines::ConfigGraph> graph;
  TunerFactory hiperbot;
  TunerFactory geist;
  TunerFactory random;
};

/// Build the three §V methods for a dataset. The GEIST graph is built once
/// here (it is the expensive part) and shared by every replicated run.
[[nodiscard]] StandardMethods make_standard_methods(
    const tabular::TabularObjective& dataset,
    const core::HiPerBOtConfig& hiperbot_config = {},
    const baselines::GeistConfig& geist_config = {});

/// All tuner names accepted by make_named_tuner, in display order:
/// hiperbot, geist, random, gp, anneal, hillclimb, brt.
[[nodiscard]] const std::vector<std::string>& tuner_names();

/// Construct any implemented tuner by name (used by the CLI). Throws on an
/// unknown name. The enumerated pool is shared where the method needs one;
/// GEIST builds its graph internally here, so construct once and reuse for
/// repeated runs when that matters.
[[nodiscard]] std::unique_ptr<core::Tuner> make_named_tuner(
    const std::string& name, const tabular::TabularObjective& dataset,
    std::uint64_t seed);

}  // namespace hpb::eval
