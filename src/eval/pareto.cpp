#include "eval/pareto.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace hpb::eval {

std::vector<std::size_t> pareto_front(std::span<const double> f1,
                                      std::span<const double> f2) {
  HPB_REQUIRE(f1.size() == f2.size(), "pareto_front: size mismatch");
  HPB_REQUIRE(!f1.empty(), "pareto_front: empty input");
  std::vector<std::size_t> order(f1.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Sort by f1 ascending, ties by f2 ascending; then a sweep keeping points
  // that strictly improve the best-seen f2 yields the non-dominated set.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (f1[a] != f1[b]) {
      return f1[a] < f1[b];
    }
    return f2[a] < f2[b];
  });
  std::vector<std::size_t> front;
  double best_f2 = 0.0;
  bool first = true;
  double prev_f1 = 0.0;
  for (std::size_t idx : order) {
    if (first) {
      front.push_back(idx);
      best_f2 = f2[idx];
      prev_f1 = f1[idx];
      first = false;
      continue;
    }
    if (f2[idx] < best_f2) {
      front.push_back(idx);
      best_f2 = f2[idx];
      prev_f1 = f1[idx];
    } else if (f1[idx] == prev_f1 && f2[idx] == best_f2) {
      front.push_back(idx);  // duplicate extreme: keep (non-dominated tie)
    }
  }
  return front;
}

double hypervolume_2d(std::span<const double> f1, std::span<const double> f2,
                      double ref1, double ref2) {
  const std::vector<std::size_t> front = pareto_front(f1, f2);
  double volume = 0.0;
  double prev_f2 = ref2;
  for (std::size_t idx : front) {  // ascending f1, descending f2
    if (f1[idx] >= ref1 || f2[idx] >= prev_f2) {
      continue;
    }
    volume += (ref1 - f1[idx]) * (prev_f2 - f2[idx]);
    prev_f2 = f2[idx];
  }
  return volume;
}

}  // namespace hpb::eval
