// Text and CSV reporting for experiment results: renders the same rows and
// series the paper's figures plot (sample size on the x-axis labeled as
// "percent (count)" like Figs. 2–6, mean ± std per method).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "eval/experiment.hpp"

namespace hpb::eval {

/// Print a figure-style table: one column block per checkpoint, one row per
/// method, cells "mean ± std". `dataset_size` drives the percent labels;
/// pass `exhaustive_best` >= 0 to print the paper's "Exhaustive best" line.
void print_curves(std::ostream& os, const std::string& title,
                  const std::vector<MethodCurve>& curves,
                  std::size_t dataset_size, double exhaustive_best,
                  bool show_recall);

/// Write curves as tidy CSV: method,metric,sample_size,mean,std.
void write_curves_csv(const std::string& path,
                      const std::vector<MethodCurve>& curves);

/// Format "mean ± std" with sensible precision.
[[nodiscard]] std::string format_mean_std(const stats::RunningStats& s);

}  // namespace hpb::eval
