#include "eval/experiment.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "eval/metrics.hpp"

namespace hpb::eval {

MethodCurve run_selection_experiment(tabular::TabularObjective& dataset,
                                     const std::string& method_name,
                                     const TunerFactory& factory,
                                     const SelectionExperimentConfig& config) {
  HPB_REQUIRE(!config.sample_sizes.empty(),
              "run_selection_experiment: no sample sizes");
  HPB_REQUIRE(config.reps >= 1, "run_selection_experiment: reps must be >= 1");
  const std::size_t budget =
      *std::max_element(config.sample_sizes.begin(), config.sample_sizes.end());
  HPB_REQUIRE(budget <= dataset.size(),
              "run_selection_experiment: budget exceeds dataset size");

  MethodCurve curve;
  curve.method = method_name;
  curve.sample_sizes = config.sample_sizes;
  curve.best_value.resize(config.sample_sizes.size());
  curve.recall.resize(config.sample_sizes.size());

  // Pre-draw one seed per rep so the curves are independent of scheduling.
  Rng seeder(config.seed);
  std::vector<std::uint64_t> seeds(config.reps);
  for (auto& s : seeds) {
    s = seeder.next_u64();
  }
  // Each rep writes its own metric slots; the reduction below runs in rep
  // order, so parallel and serial execution produce identical statistics.
  std::vector<std::vector<double>> best_per_rep(config.reps);
  std::vector<std::vector<double>> recall_per_rep(config.reps);
  HPB_REQUIRE(config.batch_size >= 1,
              "run_selection_experiment: batch_size must be >= 1");
  // Evaluations within a rep are deliberately serial (pool = nullptr): reps
  // already saturate `config.pool`, and nesting pools would deadlock.
  const core::TuningEngine engine({.batch_size = config.batch_size});
  parallel_for_indexed(config.pool, config.reps, [&](std::size_t rep) {
    auto tuner = factory(seeds[rep]);
    const core::TuneResult result = engine.run(*tuner, dataset, budget);
    auto& bests = best_per_rep[rep];
    auto& recalls = recall_per_rep[rep];
    bests.reserve(config.sample_sizes.size());
    recalls.reserve(config.sample_sizes.size());
    for (const std::size_t n : config.sample_sizes) {
      bests.push_back(best_of_first(result.history, n));
      recalls.push_back(recall_percentile(dataset, result.history, n,
                                          config.recall_percentile));
    }
  });
  for (std::size_t rep = 0; rep < config.reps; ++rep) {
    for (std::size_t k = 0; k < config.sample_sizes.size(); ++k) {
      curve.best_value[k].add(best_per_rep[rep][k]);
      curve.recall[k].add(recall_per_rep[rep][k]);
    }
  }
  return curve;
}

std::size_t count_from_env(const char* name, std::size_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) {
    return fallback;
  }
  const std::string raw(env);
  auto fail = [&](const char* why) {
    throw Error(std::string(name) + "=\"" + raw + "\": " + why +
                " (expected a positive integer)");
  };
  const char* p = env;
  while (std::isspace(static_cast<unsigned char>(*p))) {
    ++p;
  }
  if (*p == '\0') {
    fail("empty value");
  }
  if (!std::isdigit(static_cast<unsigned char>(*p))) {
    fail(*p == '-' ? "negative value" : "not a number");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(p, &end, 10);
  if (errno == ERANGE ||
      value > std::numeric_limits<std::size_t>::max()) {
    fail("value overflows");
  }
  while (std::isspace(static_cast<unsigned char>(*end))) {
    ++end;
  }
  if (*end != '\0') {
    fail("trailing garbage");
  }
  if (value == 0) {
    fail("must be >= 1");
  }
  return static_cast<std::size_t>(value);
}

std::size_t reps_from_env(std::size_t fallback) {
  return count_from_env("HPB_REPS", fallback);
}

std::size_t batch_from_env(std::size_t fallback) {
  return count_from_env("HPB_BATCH", fallback);
}

std::size_t eval_timeout_ms_from_env(std::size_t fallback) {
  return count_from_env("HPB_EVAL_TIMEOUT_MS", fallback);
}

std::string journal_path_from_env() {
  const char* env = std::getenv("HPB_JOURNAL");
  if (env == nullptr) {
    return {};
  }
  const std::string raw(env);
  if (raw.find_first_not_of(" \t") == std::string::npos) {
    throw Error("HPB_JOURNAL=\"" + raw +
                "\": empty value (expected a journal path, or unset the "
                "variable to disable journaling)");
  }
  return raw;
}

std::string trace_path_from_env() {
  const char* env = std::getenv("HPB_TRACE");
  if (env == nullptr) {
    return {};
  }
  const std::string raw(env);
  if (raw.find_first_not_of(" \t") == std::string::npos) {
    throw Error("HPB_TRACE=\"" + raw +
                "\": empty value (expected a trace path, or unset the "
                "variable to disable tracing)");
  }
  return raw;
}

}  // namespace hpb::eval
