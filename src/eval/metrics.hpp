// Evaluation metrics of §IV-B.
//
// 1. Best Performing Configuration: smallest objective value among the
//    samples a method selected.
// 2. Recall R(ℓ) (eq. 11): fraction of the dataset's best-ℓ-percentile
//    configurations present in the selected set.
// 3. Recall R(γ) (eq. 12, transfer learning): fraction of configurations
//    within (1+γ)·f(x_best) present in the selected set.
#pragma once

#include <span>

#include "core/tuner.hpp"
#include "tabular/tabular_objective.hpp"

namespace hpb::eval {

/// Best (smallest) objective value among the first `n` observations.
/// Failed observations are skipped; requires at least one success among
/// the first `n`.
[[nodiscard]] double best_of_first(std::span<const core::Observation> history,
                                   std::size_t n);

/// Recall R(ℓ) of eq. 11 over the first `n` observations: ℓ is a percentile
/// in (0, 100]. Good configurations are those with f(x) <= y_ℓ, the value of
/// the dataset's best-ℓ-percentile configuration.
[[nodiscard]] double recall_percentile(
    const tabular::TabularObjective& dataset,
    std::span<const core::Observation> history, std::size_t n, double ell);

/// Recall R(γ) of eq. 12 over the first `n` observations: good
/// configurations satisfy f(x) <= (1+γ)·f(x_best). gamma is a fraction
/// (0.05 = 5% tolerance).
[[nodiscard]] double recall_tolerance(
    const tabular::TabularObjective& dataset,
    std::span<const core::Observation> history, std::size_t n, double gamma);

/// Same as recall_tolerance but over an explicit set of dataset indices
/// (used for PerfNet, whose selection is a set of rows, not a trajectory).
[[nodiscard]] double recall_tolerance_indices(
    const tabular::TabularObjective& dataset,
    std::span<const std::size_t> selected, double gamma);

/// Number of dataset configurations within the γ tolerance (the "Number of
/// Good Cases" annotation on Fig. 8's x-axis).
[[nodiscard]] std::size_t good_case_count(
    const tabular::TabularObjective& dataset, double gamma);

}  // namespace hpb::eval
