// Replicated configuration-selection experiments (§V protocol): run each
// method `reps` times with independent seeds and report mean ± std of the
// best-configuration and Recall metrics at a series of sample-size
// checkpoints — the data behind Figs. 2–6.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/loop.hpp"
#include "core/tuner.hpp"
#include "stats/summary.hpp"
#include "tabular/tabular_objective.hpp"

namespace hpb::eval {

/// Factory producing a fresh tuner for one replicated run.
using TunerFactory =
    std::function<std::unique_ptr<core::Tuner>(std::uint64_t seed)>;

struct SelectionExperimentConfig {
  /// Sample-size checkpoints (the x-axis of Figs. 2–6); the tuning budget
  /// is the largest entry.
  std::vector<std::size_t> sample_sizes;
  /// Replications per method (the paper uses 50). Overridable via the
  /// HPB_REPS environment variable in the bench harnesses.
  std::size_t reps = 20;
  /// Recall percentile ℓ of eq. 11.
  double recall_percentile = 5.0;
  std::uint64_t seed = 0x5eedbeef;
  /// Optional worker pool: replicated runs execute concurrently (results
  /// are reduced in seed order, so curves are identical to a serial run).
  /// Requires a thread-safe objective — true for TabularObjective — and
  /// tuner factories whose products share only immutable state.
  ThreadPool* pool = nullptr;
  /// Suggest/observe batch size inside each replicated run (the engine's
  /// batch knob; HPB_BATCH in the bench harnesses). 1 reproduces the
  /// historical serial curves exactly; larger batches amortize surrogate
  /// fits and acquisition scans within a run. Evaluations inside a rep stay
  /// serial — reps are already parallelized across `pool` and a tabular
  /// lookup is too cheap to fan out twice.
  std::size_t batch_size = 1;
};

struct MethodCurve {
  std::string method;
  std::vector<std::size_t> sample_sizes;
  /// Per checkpoint: distribution over reps of the best value found.
  std::vector<stats::RunningStats> best_value;
  /// Per checkpoint: distribution over reps of R(ℓ).
  std::vector<stats::RunningStats> recall;
};

/// Run one method on one dataset.
[[nodiscard]] MethodCurve run_selection_experiment(
    tabular::TabularObjective& dataset, const std::string& method_name,
    const TunerFactory& factory, const SelectionExperimentConfig& config);

/// Strictly parsed positive count from an environment variable, else
/// `fallback` when the variable is unset. Rejects non-numeric, zero,
/// negative, trailing-garbage, and overflowing values with a clear error
/// instead of silently misparsing them.
[[nodiscard]] std::size_t count_from_env(const char* name,
                                         std::size_t fallback);

/// Replications from the HPB_REPS environment variable, else `fallback`.
[[nodiscard]] std::size_t reps_from_env(std::size_t fallback);

/// Engine batch size from the HPB_BATCH environment variable, else
/// `fallback` (same strict parsing as HPB_REPS).
[[nodiscard]] std::size_t batch_from_env(std::size_t fallback = 1);

/// Per-evaluation watchdog deadline in milliseconds from HPB_EVAL_TIMEOUT_MS,
/// else `fallback` (same strict positive-integer parsing; 0 — the disabled
/// watchdog — can only come from the fallback, not the environment).
[[nodiscard]] std::size_t eval_timeout_ms_from_env(std::size_t fallback = 0);

/// Journal path from HPB_JOURNAL, else an empty string (journaling off).
/// Rejects a set-but-blank variable instead of silently journaling nowhere.
[[nodiscard]] std::string journal_path_from_env();

/// JSON-lines trace path from HPB_TRACE, else an empty string (tracing
/// off). Rejects a set-but-blank variable instead of tracing nowhere.
[[nodiscard]] std::string trace_path_from_env();

}  // namespace hpb::eval
