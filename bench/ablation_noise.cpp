// Ablation: robustness to measurement noise. Real HPC measurements are
// noisy run-to-run; the paper's quantile-based good/bad split is expected
// to tolerate moderate noise (only the *ranking* near the threshold can
// flip). This bench injects multiplicative Gaussian noise of magnitude σ
// into every evaluation and tracks how the true quality of HiPerBOt's
// selection degrades, against Random as a noise-insensitive control.
#include <fstream>
#include <iomanip>
#include <iostream>

#include "apps/kripke.hpp"
#include "baselines/random_search.hpp"
#include "core/engine.hpp"
#include "core/hiperbot.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "figure_common.hpp"
#include "stats/summary.hpp"
#include "tabular/adapters.hpp"

namespace {

struct NoiseResult {
  hpb::stats::RunningStats best_true;   // true value of selected best
  hpb::stats::RunningStats recall;      // true-recall of the selected set
};

/// True (noise-free) recall of a trajectory measured under noise.
double true_recall(const hpb::tabular::TabularObjective& dataset,
                   const hpb::core::TuneResult& result, double ell) {
  const double threshold = dataset.percentile_value(ell);
  const std::size_t denom = dataset.count_leq(threshold);
  std::size_t hits = 0;
  for (const auto& obs : result.history) {
    if (dataset.value_of(obs.config) <= threshold) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(denom);
}

NoiseResult run(hpb::tabular::TabularObjective& dataset, double sigma,
                bool hiperbot, std::size_t reps) {
  NoiseResult out;
  hpb::Rng seeder(0xAB0153 + static_cast<std::uint64_t>(sigma * 1e4) +
                  (hiperbot ? 1 : 0));
  const auto pool =
      std::make_shared<const std::vector<hpb::space::Configuration>>(
          dataset.configs().begin(), dataset.configs().end());
  for (std::size_t rep = 0; rep < reps; ++rep) {
    const std::uint64_t seed = seeder.next_u64();
    hpb::tabular::NoisyObjective noisy(dataset, sigma, seed);
    std::unique_ptr<hpb::core::Tuner> tuner;
    if (hiperbot) {
      tuner = std::make_unique<hpb::core::HiPerBOt>(
          dataset.space_ptr(), hpb::core::HiPerBOtConfig{}, seed, pool);
    } else {
      tuner = std::make_unique<hpb::baselines::RandomSearch>(
          dataset.space_ptr(), seed, pool);
    }
    const hpb::core::TuningEngine engine(
        {.batch_size = hpb::eval::batch_from_env(1)});
    const auto result = engine.run(*tuner, noisy, 150);
    // Report the TRUE value of the configuration the tuner believes best.
    double best_true = dataset.value_of(result.history.front().config);
    double best_observed = result.history.front().y;
    for (const auto& obs : result.history) {
      if (obs.y < best_observed) {
        best_observed = obs.y;
        best_true = dataset.value_of(obs.config);
      }
    }
    out.best_true.add(best_true);
    out.recall.add(true_recall(dataset, result, 5.0));
  }
  return out;
}

}  // namespace

int main() {
  const std::size_t reps = hpb::eval::reps_from_env(10);
  auto dataset = hpb::apps::make_kripke_exec();
  std::ofstream csv(hpb::benchfig::csv_path("ablation_noise"));
  csv << "sigma,method,best_true_mean,best_true_std,recall_mean,recall_std\n";

  const std::vector<double> sigmas = {0.0, 0.02, 0.05, 0.10, 0.20};
  std::cout << "Ablation: measurement-noise robustness on Kripke exec "
               "(budget 150, reps "
            << reps << ")\n"
            << "cells: true value of the selected best / true recall(5%)\n\n"
            << std::left << std::setw(10) << "sigma" << std::setw(26)
            << "HiPerBOt" << std::setw(26) << "Random" << '\n';
  for (double sigma : sigmas) {
    const NoiseResult hpb_result = run(dataset, sigma, true, reps);
    const NoiseResult rnd_result = run(dataset, sigma, false, reps);
    auto cell = [](const NoiseResult& r) {
      std::ostringstream os;
      os << std::fixed << std::setprecision(2) << r.best_true.mean() << " / "
         << std::setprecision(3) << r.recall.mean();
      return os.str();
    };
    std::cout << std::left << std::setw(10) << sigma << std::setw(26)
              << cell(hpb_result) << std::setw(26) << cell(rnd_result) << '\n';
    csv << sigma << ",HiPerBOt," << hpb_result.best_true.mean() << ','
        << hpb_result.best_true.stddev() << ',' << hpb_result.recall.mean()
        << ',' << hpb_result.recall.stddev() << '\n';
    csv << sigma << ",Random," << rnd_result.best_true.mean() << ','
        << rnd_result.best_true.stddev() << ',' << rnd_result.recall.mean()
        << ',' << rnd_result.recall.stddev() << '\n';
  }
  std::cout << "\nwrote " << hpb::benchfig::csv_path("ablation_noise") << '\n';
  return 0;
}
