// Microbenchmarks (google-benchmark) for the HiPerBOt core: surrogate
// fitting, acquisition scoring, density operations, and the full
// per-iteration suggest cost. Substantiates the §VII claim that the tuner
// overhead (~hundreds of milliseconds end-to-end for LULESH) is negligible
// next to a single application run.
#include <benchmark/benchmark.h>

#include "apps/lulesh.hpp"
#include "core/engine.hpp"
#include "core/hiperbot.hpp"
#include "core/loop.hpp"
#include "core/surrogate.hpp"
#include "stats/histogram.hpp"
#include "stats/kde.hpp"

namespace {

using hpb::core::History;

/// A lulesh history of n observations shared across iterations.
History make_history(const hpb::tabular::TabularObjective& ds, std::size_t n) {
  hpb::Rng rng(1);
  History h;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& c = ds.config(rng.index(ds.size()));
    h.add(c, ds.value_of(c));
  }
  return h;
}

void BM_SurrogateFit(benchmark::State& state) {
  const auto ds = hpb::apps::make_lulesh();
  const History h = make_history(ds, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    hpb::core::TpeSurrogate s(ds.space_ptr(), h, 0.2);
    benchmark::DoNotOptimize(&s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SurrogateFit)->Arg(50)->Arg(150)->Arg(500);

void BM_AcquisitionScoring(benchmark::State& state) {
  const auto ds = hpb::apps::make_lulesh();
  const History h = make_history(ds, 150);
  const hpb::core::TpeSurrogate s(ds.space_ptr(), h, 0.2);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += s.acquisition(ds.config(i));
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_AcquisitionScoring)->Arg(1000)->Arg(5000);

void BM_FullSuggestObserve(benchmark::State& state) {
  // End-to-end cost of one Ranking-strategy iteration at history size 150
  // on the full 5632-config LULESH pool — the paper's "HiPerBOt for LULESH
  // took around 600 ms total" scenario.
  auto ds = hpb::apps::make_lulesh();
  for (auto _ : state) {
    state.PauseTiming();
    hpb::core::HiPerBOt tuner(ds.space_ptr(), {}, 7);
    (void)hpb::core::run_tuning(tuner, ds, 150);
    state.ResumeTiming();
    const auto c = tuner.suggest();
    benchmark::DoNotOptimize(&c);
    state.PauseTiming();
    tuner.observe(c, ds.value_of(c));
    state.ResumeTiming();
  }
}
BENCHMARK(BM_FullSuggestObserve)->Unit(benchmark::kMillisecond)->Iterations(5);

void BM_WholeTuningRun(benchmark::State& state) {
  // The §VII comparison: a complete 150-evaluation tuning session on
  // LULESH (vs 19 hours to evaluate all configurations on the real machine,
  // vs 2.7 s for a single good application run).
  auto ds = hpb::apps::make_lulesh();
  for (auto _ : state) {
    hpb::core::HiPerBOt tuner(ds.space_ptr(), {}, 11);
    const auto result = hpb::core::run_tuning(tuner, ds, 150);
    benchmark::DoNotOptimize(result.best_value);
  }
}
BENCHMARK(BM_WholeTuningRun)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_BatchedTuningRun(benchmark::State& state) {
  // Same 150-evaluation session driven through the batched engine: one
  // surrogate fit + one acquisition pass per batch instead of per
  // evaluation, so larger batches amortize the model-phase cost.
  auto ds = hpb::apps::make_lulesh();
  const hpb::core::TuningEngine engine(
      {.batch_size = static_cast<std::size_t>(state.range(0))});
  for (auto _ : state) {
    hpb::core::HiPerBOt tuner(ds.space_ptr(), {}, 11);
    const auto result = engine.run(tuner, ds, 150);
    benchmark::DoNotOptimize(result.best_value);
  }
}
BENCHMARK(BM_BatchedTuningRun)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16);

void BM_HistogramPmf(benchmark::State& state) {
  hpb::stats::HistogramDensity hist(16);
  hpb::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    hist.add(rng.index(16));
  }
  std::size_t level = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hist.pmf(level));
    level = (level + 1) % 16;
  }
}
BENCHMARK(BM_HistogramPmf);

void BM_KdePdf(benchmark::State& state) {
  hpb::Rng rng(4);
  std::vector<double> samples;
  for (int64_t i = 0; i < state.range(0); ++i) {
    samples.push_back(rng.uniform(0.0, 1.0));
  }
  const hpb::stats::KernelDensity kde(samples, 0.0, 1.0);
  double x = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kde.pdf(x));
    x += 0.001;
    if (x > 1.0) {
      x = 0.0;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KdePdf)->Arg(32)->Arg(256);

void BM_ImportanceAnalysis(benchmark::State& state) {
  const auto ds = hpb::apps::make_lulesh();
  const History h = make_history(ds, 500);
  const hpb::core::TpeSurrogate s(ds.space_ptr(), h, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.parameter_importance());
  }
}
BENCHMARK(BM_ImportanceAnalysis);

}  // namespace

BENCHMARK_MAIN();
