// Figure 2: Kripke execution-time study — best configuration found and
// Recall vs sample size {32, 64, 96, 128, 160, 192}, HiPerBOt vs GEIST vs
// Random vs exhaustive best.
#include "apps/kripke.hpp"
#include "figure_common.hpp"

int main() {
  auto dataset = hpb::apps::make_kripke_exec();
  hpb::benchfig::FigureSpec spec;
  spec.title = "Figure 2: Kripke execution time";
  spec.csv_name = "fig2_kripke_exec";
  spec.sample_sizes = {32, 64, 96, 128, 160, 192};
  spec.recall_percentile = 5.0;
  spec.reference_value = 15.2;
  spec.reference_label = "expert loop-ordering choice";
  return hpb::benchfig::run_selection_figure(dataset, spec);
}
