// Ablation: the Gaussian-process baseline the paper cites but does not
// re-run ([17], Duplyakin et al.) — GEIST had already been shown to beat
// GP regression, so §V compares only against GEIST. This bench closes the
// loop: GP-EI vs GEIST vs HiPerBOt vs Random on the Kripke execution-time
// dataset.
#include <fstream>
#include <iostream>

#include "apps/kripke.hpp"
#include "baselines/gp_tuner.hpp"
#include "eval/experiment.hpp"
#include "eval/methods.hpp"
#include "eval/report.hpp"
#include "figure_common.hpp"

int main() {
  const std::size_t reps = hpb::eval::reps_from_env(5);
  auto dataset = hpb::apps::make_kripke_exec();

  hpb::eval::SelectionExperimentConfig config;
  config.sample_sizes = {32, 64, 96, 128};
  config.reps = reps;
  config.recall_percentile = 5.0;
  config.seed = 0xAB69;

  const auto methods = hpb::eval::make_standard_methods(dataset);
  hpb::eval::TunerFactory gp = [&](std::uint64_t seed) {
    hpb::baselines::GpConfig gc;
    gc.candidate_subsample = 512;
    return std::make_unique<hpb::baselines::GpTuner>(dataset.space_ptr(), gc,
                                                     seed, methods.pool);
  };

  std::cout << "Ablation: GP-EI baseline on Kripke execution time (reps "
            << reps << ")\n";
  std::vector<hpb::eval::MethodCurve> curves;
  curves.push_back(hpb::eval::run_selection_experiment(dataset, "Random",
                                                       methods.random, config));
  curves.push_back(
      hpb::eval::run_selection_experiment(dataset, "GP-EI", gp, config));
  curves.push_back(
      hpb::eval::run_selection_experiment(dataset, "GEIST", methods.geist,
                                          config));
  curves.push_back(hpb::eval::run_selection_experiment(
      dataset, "HiPerBOt", methods.hiperbot, config));
  hpb::eval::print_curves(std::cout, "GP ablation (Kripke exec)", curves,
                          dataset.size(), dataset.best_value(),
                          /*show_recall=*/true);
  hpb::eval::write_curves_csv(hpb::benchfig::csv_path("ablation_gp"), curves);
  std::cout << "wrote " << hpb::benchfig::csv_path("ablation_gp") << '\n';
  return 0;
}
