// Extension: full method shootout — every implemented tuner (HiPerBOt,
// GEIST, Random, GP-EI, simulated annealing, hill climbing, boosted
// regression trees) on every §V dataset at a fixed budget, with bootstrap
// confidence intervals and Mann–Whitney significance against HiPerBOt.
// This widens the paper's two-baseline comparison to the full span of
// autotuning search strategies it cites in §VIII.
#include <chrono>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <optional>

#include "apps/registry.hpp"
#include "core/engine.hpp"
#include "obs/trace.hpp"
#include "eval/experiment.hpp"
#include "eval/methods.hpp"
#include "eval/metrics.hpp"
#include "figure_common.hpp"
#include "tabular/fault_injection.hpp"
#include "stats/inference.hpp"
#include "stats/summary.hpp"

int main() {
  const std::size_t reps = hpb::eval::reps_from_env(5);
  const std::size_t batch = hpb::eval::batch_from_env(1);
  const double fail_rate = hpb::tabular::fail_rate_from_env(0.0);
  const double crash_rate = hpb::tabular::crash_rate_from_env(0.0);
  const double hang_rate = hpb::tabular::hang_rate_from_env(0.0);
  const std::size_t timeout_ms = hpb::eval::eval_timeout_ms_from_env(
      hang_rate > 0.0 ? 50 : 0);  // injected hangs need a watchdog to end
  constexpr std::size_t kBudget = 150;
  // HPB_TRACE=<file> traces every run of the shootout into one JSONL file
  // (strictly parsed: a set-but-blank value is an error, not silence).
  const std::string trace_path = hpb::eval::trace_path_from_env();
  std::optional<hpb::obs::JsonlTraceSink> trace_sink;
  if (!trace_path.empty()) {
    trace_sink.emplace(hpb::obs::JsonlTraceSink::create(trace_path));
  }
  const hpb::core::TuningEngine engine(
      {.batch_size = batch,
       .eval_deadline = std::chrono::milliseconds(timeout_ms),
       .recorder = {.trace = trace_sink ? &*trace_sink : nullptr}});
  std::ofstream csv(hpb::benchfig::csv_path("shootout"));
  csv << "dataset,method,best_mean,best_std,recall_mean,recall_std,"
         "p_vs_hiperbot\n";

  std::cout << "Method shootout: all tuners, all datasets (budget "
            << kBudget << ", reps " << reps << ", batch " << batch << ")\n";
  if (fail_rate > 0.0 || crash_rate > 0.0 || hang_rate > 0.0) {
    std::cout << "fault injection: fail rate " << fail_rate
              << ", crash rate " << crash_rate << ", hang rate " << hang_rate
              << " (watchdog " << timeout_ms << " ms)\n";
  }
  std::cout << '\n';

  for (const auto& info : hpb::apps::dataset_registry()) {
    auto dataset = info.make();
    std::cout << "== " << info.name << " (exhaustive best "
              << dataset.best_value() << ") ==\n"
              << std::left << std::setw(12) << "method" << std::setw(22)
              << "best (mean +/- std)" << std::setw(20) << "recall(5%)"
              << "p vs hiperbot\n";

    std::vector<std::vector<double>> bests;
    for (const auto& name : hpb::eval::tuner_names()) {
      if (name == "exhaustive") {
        continue;  // a budgeted prefix scan is not a meaningful competitor
      }
      std::vector<double> best_values, recalls;
      hpb::Rng seeder(0x5800 + bests.size());
      for (std::size_t rep = 0; rep < reps; ++rep) {
        auto tuner =
            hpb::eval::make_named_tuner(name, dataset, seeder.next_u64());
        // Pass-through when all rates are 0; otherwise a deterministic
        // subset of each dataset fails (same regions for every method).
        hpb::tabular::FaultInjectingObjective faulty(
            dataset, {.fail_rate = fail_rate,
                      .crash_rate = crash_rate,
                      .hang_rate = hang_rate,
                      .seed = 0xfa011 + rep});
        const auto result = engine.run(*tuner, faulty, kBudget);
        best_values.push_back(result.best_value);
        recalls.push_back(hpb::eval::recall_percentile(
            dataset, result.history, kBudget, 5.0));
      }
      bests.push_back(best_values);

      const auto best_stats = hpb::stats::summarize(best_values);
      const auto recall_stats = hpb::stats::summarize(recalls);
      double p = 1.0;
      std::string p_text = "-";
      if (bests.size() > 1 && reps >= 2) {
        try {
          p = hpb::stats::mann_whitney_u(bests.front(), best_values).p_value;
          std::ostringstream os;
          os << std::setprecision(3) << p;
          p_text = os.str();
        } catch (const hpb::Error&) {
          p_text = "n/a (identical)";  // both methods always hit the optimum
        }
      }
      std::ostringstream best_cell, recall_cell;
      best_cell << std::fixed << std::setprecision(2) << best_stats.mean()
                << " ± " << best_stats.stddev();
      recall_cell << std::fixed << std::setprecision(3)
                  << recall_stats.mean() << " ± " << recall_stats.stddev();
      std::cout << std::left << std::setw(12) << name << std::setw(22)
                << best_cell.str() << std::setw(20) << recall_cell.str()
                << p_text << '\n';
      csv << info.name << ',' << name << ',' << best_stats.mean() << ','
          << best_stats.stddev() << ',' << recall_stats.mean() << ','
          << recall_stats.stddev() << ',' << p << '\n';
    }
    std::cout << '\n';
  }
  if (trace_sink) {
    trace_sink->flush();
    std::cout << "trace written to " << trace_sink->path() << '\n';
  }
  std::cout << "wrote " << hpb::benchfig::csv_path("shootout") << '\n';
  return 0;
}
