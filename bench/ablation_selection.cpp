// Ablation: Ranking vs Proposal selection strategy (§III-D).
//
// The paper argues Ranking is the right choice for the discrete, finite
// configuration spaces of HPC applications (it scores every un-evaluated
// candidate and never proposes duplicates), while Proposal is what generic
// TPE implementations use. This bench quantifies the gap on every dataset.
#include <fstream>
#include <iostream>

#include "apps/registry.hpp"
#include "core/hiperbot.hpp"
#include "eval/experiment.hpp"
#include "eval/report.hpp"
#include "figure_common.hpp"

int main() {
  const std::size_t reps = hpb::eval::reps_from_env(10);
  std::ofstream csv(hpb::benchfig::csv_path("ablation_selection"));
  csv << "dataset,strategy,metric,sample_size,mean,std\n";

  std::cout << "Ablation: Ranking vs Proposal selection strategy (reps "
            << reps << ")\n\n";
  for (const auto& info : hpb::apps::dataset_registry()) {
    auto dataset = info.make();
    hpb::eval::SelectionExperimentConfig config;
    config.sample_sizes = {50, 100, 150, 200};
    config.reps = reps;
    config.recall_percentile = 5.0;
    config.seed = 0xAB1A;

    const auto pool =
        std::make_shared<const std::vector<hpb::space::Configuration>>(
            dataset.configs().begin(), dataset.configs().end());
    auto factory = [&](hpb::core::SelectionStrategy strategy) {
      return [&, strategy](std::uint64_t seed) {
        hpb::core::HiPerBOtConfig hc;
        hc.strategy = strategy;
        hc.proposal_candidates = 64;
        return std::make_unique<hpb::core::HiPerBOt>(dataset.space_ptr(), hc,
                                                     seed, pool);
      };
    };

    std::vector<hpb::eval::MethodCurve> curves;
    curves.push_back(hpb::eval::run_selection_experiment(
        dataset, "Ranking",
        factory(hpb::core::SelectionStrategy::kRanking), config));
    curves.push_back(hpb::eval::run_selection_experiment(
        dataset, "Proposal",
        factory(hpb::core::SelectionStrategy::kProposal), config));
    hpb::eval::print_curves(std::cout, info.name, curves, dataset.size(),
                            dataset.best_value(), /*show_recall=*/true);
    for (const auto& c : curves) {
      for (std::size_t k = 0; k < c.sample_sizes.size(); ++k) {
        csv << info.name << ',' << c.method << ",best," << c.sample_sizes[k]
            << ',' << c.best_value[k].mean() << ',' << c.best_value[k].stddev()
            << '\n';
        csv << info.name << ',' << c.method << ",recall,"
            << c.sample_sizes[k] << ',' << c.recall[k].mean() << ','
            << c.recall[k].stddev() << '\n';
      }
    }
  }
  std::cout << "wrote " << hpb::benchfig::csv_path("ablation_selection")
            << '\n';
  return 0;
}
