#include "figure_common.hpp"

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "common/thread_pool.hpp"
#include "eval/experiment.hpp"
#include "eval/methods.hpp"
#include "eval/report.hpp"

namespace hpb::benchfig {

std::string csv_path(const std::string& name) {
  std::filesystem::create_directories("bench_results");
  return "bench_results/" + name + ".csv";
}

int run_selection_figure(tabular::TabularObjective& dataset,
                         const FigureSpec& spec) {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();

  eval::SelectionExperimentConfig config;
  config.sample_sizes = spec.sample_sizes;
  config.reps = eval::reps_from_env(spec.default_reps);
  config.recall_percentile = spec.recall_percentile;
  config.seed = spec.seed;
  config.batch_size = eval::batch_from_env(1);
  const std::size_t threads = eval::count_from_env("HPB_THREADS", 1);
  ThreadPool pool(threads);
  config.pool = threads > 1 ? &pool : nullptr;

  const eval::StandardMethods methods = eval::make_standard_methods(dataset);

  std::vector<eval::MethodCurve> curves;
  curves.push_back(eval::run_selection_experiment(dataset, "Random",
                                                  methods.random, config));
  curves.push_back(
      eval::run_selection_experiment(dataset, "GEIST", methods.geist, config));
  curves.push_back(eval::run_selection_experiment(dataset, "HiPerBOt",
                                                  methods.hiperbot, config));

  std::cout << spec.title << "\n"
            << "dataset: " << dataset.name() << ", " << dataset.size()
            << " configurations, exhaustive best " << dataset.best_value()
            << ", reps " << config.reps << ", batch " << config.batch_size
            << ", recall ell " << spec.recall_percentile << "%\n";
  if (spec.reference_value >= 0.0) {
    std::cout << "paper reference (" << spec.reference_label
              << "): " << spec.reference_value << '\n';
  }
  eval::print_curves(std::cout, spec.title, curves, dataset.size(),
                     dataset.best_value(), /*show_recall=*/true);
  eval::write_curves_csv(csv_path(spec.csv_name), curves);

  const double seconds =
      std::chrono::duration<double>(Clock::now() - t0).count();
  std::cout << "wrote " << csv_path(spec.csv_name) << "  (" << seconds
            << " s)\n";
  return 0;
}

}  // namespace hpb::benchfig
