// Microbenchmarks (google-benchmark) for the baseline substrates: GEIST
// graph construction, CAMLP propagation, GP refits, and MLP training
// epochs. These are the costs that dominate the figure-level harnesses.
#include <benchmark/benchmark.h>

#include "apps/kripke.hpp"
#include "baselines/camlp.hpp"
#include "baselines/config_graph.hpp"
#include "baselines/gp_tuner.hpp"
#include "nn/mlp.hpp"

namespace {

void BM_GraphBuild(benchmark::State& state) {
  const auto ds = hpb::apps::make_kripke_exec();
  const std::vector<hpb::space::Configuration> pool(ds.configs().begin(),
                                                    ds.configs().end());
  for (auto _ : state) {
    hpb::baselines::ConfigGraph g(ds.space(), pool);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(pool.size()));
}
BENCHMARK(BM_GraphBuild)->Unit(benchmark::kMillisecond);

void BM_CamlpPropagation(benchmark::State& state) {
  const auto ds = hpb::apps::make_kripke_exec();
  const std::vector<hpb::space::Configuration> pool(ds.configs().begin(),
                                                    ds.configs().end());
  const hpb::baselines::ConfigGraph g(ds.space(), pool);
  hpb::baselines::Labels labels(pool.size(), -1);
  hpb::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    labels[rng.index(pool.size())] = static_cast<std::int8_t>(rng.index(2));
  }
  hpb::baselines::CamlpConfig config;
  config.max_iters = static_cast<std::size_t>(state.range(0));
  config.tolerance = 0.0;  // force the full iteration count
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hpb::baselines::camlp_propagate(g, labels, config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_CamlpPropagation)->Arg(10)->Arg(30)->Unit(benchmark::kMillisecond);

void BM_GpRefit(benchmark::State& state) {
  const auto ds = hpb::apps::make_kripke_exec();
  const auto pool =
      std::make_shared<const std::vector<hpb::space::Configuration>>(
          ds.configs().begin(), ds.configs().end());
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  hpb::baselines::GpConfig config;
  config.initial_samples = n;  // refit happens on the n-th observe
  hpb::Rng rng(2);
  for (auto _ : state) {
    state.PauseTiming();
    hpb::baselines::GpTuner tuner(ds.space_ptr(), config, rng.next_u64(),
                                  pool);
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto& c = (*pool)[rng.index(pool->size())];
      tuner.observe(c, ds.value_of(c));  // below threshold: no refit yet
    }
    const auto& last = (*pool)[rng.index(pool->size())];
    state.ResumeTiming();
    tuner.observe(last, ds.value_of(last));  // triggers the O(n³) refit
  }
}
BENCHMARK(BM_GpRefit)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_MlpTrainEpoch(benchmark::State& state) {
  hpb::Rng rng(3);
  const std::size_t width = 32;
  hpb::nn::Mlp net({width, 64, 32, 1}, rng);
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  hpb::linalg::Matrix x(rows, width);
  std::vector<double> y(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < width; ++c) {
      x(r, c) = rng.normal();
    }
    y[r] = rng.normal();
  }
  hpb::nn::TrainConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.train_epoch(x, y, config, rng));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(rows));
}
BENCHMARK(BM_MlpTrainEpoch)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
