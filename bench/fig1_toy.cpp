// Figure 1: the paper's toy walkthrough of the algorithm on a 1-D
// objective. Reproduces all four panels as text/CSV series:
//   (a) the objective and the initial random samples, split good/bad;
//   (b) the good/bad probability densities and the expected-improvement
//       surrogate (pg/pb ratio) on a grid;
//   (c) all samples after 1 further iteration;
//   (d) all samples after 10 further iterations — concentrating near the
//       minimum.
#include <cmath>
#include <fstream>
#include <iostream>

#include "core/hiperbot.hpp"
#include "core/loop.hpp"
#include "figure_common.hpp"
#include "tabular/objective.hpp"

namespace {

/// The Fig. 1 style objective on [0, 5]: a smooth dip with a unique
/// minimum near x = 2 and values spanning roughly [-25, 125].
double toy_f(double x) {
  return 25.0 * (x - 2.0) * (x - 2.0) - 25.0 + 10.0 * std::sin(3.0 * x);
}

class ToyObjective final : public hpb::tabular::Objective {
 public:
  ToyObjective() {
    auto s = std::make_shared<hpb::space::ParameterSpace>();
    s->add(hpb::space::Parameter::continuous("x", 0.0, 5.0));
    space_ = std::move(s);
  }
  const hpb::space::ParameterSpace& space() const override { return *space_; }
  hpb::space::SpacePtr space_ptr() const { return space_; }
  double evaluate(const hpb::space::Configuration& c) override {
    return toy_f(c[0]);
  }
  std::string name() const override { return "toy1d"; }

 private:
  hpb::space::SpacePtr space_;
};

}  // namespace

int main() {
  using hpb::core::HiPerBOt;
  using hpb::core::HiPerBOtConfig;
  using hpb::core::SelectionStrategy;

  ToyObjective objective;
  HiPerBOtConfig config;
  config.initial_samples = 10;  // the paper's ten random training samples
  config.quantile = 0.2;        // bottom 20th percentile is "good"
  config.strategy = SelectionStrategy::kProposal;
  config.proposal_candidates = 128;
  HiPerBOt tuner(objective.space_ptr(), config, 2020);

  std::ofstream csv(hpb::benchfig::csv_path("fig1_toy"));
  csv << "panel,x,value\n";

  auto dump_samples = [&](const char* panel) {
    const auto& h = tuner.history();
    for (std::size_t i = 0; i < h.size(); ++i) {
      csv << panel << ',' << h[i].config[0] << ',' << h[i].y << '\n';
    }
  };
  auto step = [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto c = tuner.suggest();
      tuner.observe(c, objective.evaluate(c));
    }
  };

  std::cout << "Figure 1: toy 1-D example (minimize f on [0,5], min near x=2)\n\n";

  // Panel (a): initial samples, good/bad coloring.
  step(config.initial_samples);
  dump_samples("a_initial");
  {
    const auto surrogate = tuner.fit_surrogate();
    std::cout << "(a) initial samples (threshold y(tau) = "
              << surrogate.threshold() << "):\n";
    for (const auto& obs : tuner.history().observations()) {
      std::cout << "    x=" << obs.config[0] << "  f=" << obs.y << "  ["
                << (obs.y < surrogate.threshold() ? "good" : "bad") << "]\n";
    }

    // Panel (b): densities and expected improvement on a grid.
    std::cout << "\n(b) surrogate on a grid (pg, pb, EI = log pg - log pb):\n";
    for (int i = 0; i <= 25; ++i) {
      const double x = 5.0 * i / 25.0;
      const hpb::space::Configuration c(std::vector<double>{x});
      const double pg = std::exp(surrogate.good().log_density(c));
      const double pb = std::exp(surrogate.bad().log_density(c));
      csv << "b_pg," << x << ',' << pg << '\n';
      csv << "b_pb," << x << ',' << pb << '\n';
      csv << "b_ei," << x << ',' << surrogate.acquisition(c) << '\n';
      if (i % 5 == 0) {
        std::cout << "    x=" << x << "  pg=" << pg << "  pb=" << pb
                  << "  EI=" << surrogate.acquisition(c) << '\n';
      }
    }
  }

  // Panel (c): after one more iteration.
  step(1);
  dump_samples("c_iter1");
  std::cout << "\n(c) newest sample after iteration 1: x="
            << tuner.history()[tuner.history().size() - 1].config[0] << '\n';

  // Panel (d): after ten total iterations.
  step(9);
  dump_samples("d_iter10");
  std::cout << "\n(d) after 10 iterations, samples near the minimum (x in "
               "[1.5, 2.5]):\n    ";
  std::size_t near = 0;
  const auto& h = tuner.history();
  for (std::size_t i = config.initial_samples; i < h.size(); ++i) {
    if (std::abs(h[i].config[0] - 2.0) <= 0.5) {
      ++near;
    }
  }
  std::cout << near << " of " << (h.size() - config.initial_samples)
            << " model-selected samples\n";
  std::cout << "best found: f=" << h.best_value()
            << " at x=" << h.best_config()[0] << "  (true min ~ -34.8)\n";
  std::cout << "\nwrote " << hpb::benchfig::csv_path("fig1_toy") << '\n';
  return 0;
}
