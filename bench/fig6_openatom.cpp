// Figure 6: OpenAtom decomposition parameters — best configuration and
// Recall vs sample size {39, 139, 239, 339, 439} over the 8-parameter
// Charm++ over-decomposition space.
#include "apps/openatom.hpp"
#include "figure_common.hpp"

int main() {
  auto dataset = hpb::apps::make_openatom();
  hpb::benchfig::FigureSpec spec;
  spec.title = "Figure 6: OpenAtom";
  spec.csv_name = "fig6_openatom";
  spec.sample_sizes = {39, 139, 239, 339, 439};
  spec.recall_percentile = 5.0;
  spec.reference_value = 1.6;
  spec.reference_label = "expert symmetric decomposition";
  return hpb::benchfig::run_selection_figure(dataset, spec);
}
