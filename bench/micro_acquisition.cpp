// Micro-benchmark of the Ranking acquisition sweep (core/acquisition.hpp):
// serial direct scoring (TpeSurrogate::acquisition per candidate) vs the
// precomputed score table — per-candidate scalar lookups, the vectorized
// score_block kernel under the runtime SIMD tier, and the parallel block
// sweep — across pool sizes 2^12..2^24 and history sizes {25, 100, 400},
// plus one mixed discrete+continuous scenario where the distinct-value
// memo collapses the per-candidate KDE cost.
//
// Every timed sweep is an argmax (top-1) with the history's configurations
// excluded, matching what HiPerBOt::suggest does each iteration; all paths'
// winners are checked bitwise against the reference before timings are
// reported (the direct reference is measured up to 2^22; above that the
// scalar table sweep — already proven bitwise-equal to direct at every
// smaller size — serves as the oracle and `direct_ns` is omitted).
//
// Honesty notes baked into the output: every result row records the
// worker-thread count actually used for its parallel sweep (default:
// hardware concurrency; the committed numbers are only "multi-threaded"
// when that count exceeds 1) and the SIMD tier the vector sweeps ran. The
// top 2^22–2^24 rows also record streamed bytes and effective GB/s — the
// point at which GB/s stops growing with pool size is the memory-bandwidth
// ceiling, and the JSON says so in `bandwidth_note`.
//
// The refit scenario rebuilds the score table after a pending-liar re-fit
// (good side unchanged, bad side grown by one) with and without column
// reuse; a non-smoke run *fails* unless the incremental build is at least
// as fast as the full build at every recorded size — the regression gate
// for the write-in-place reuse path.
//
// Usage: micro_acquisition [--smoke] [--threads N] [--out PATH]
//   --smoke     tiny sizes / single rep (CI wiring check, label `bench`)
//   --threads   worker threads for the parallel sweep (0 = hardware, default)
//   --out       JSON output path (default BENCH_acquisition.json)
#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "core/acquisition.hpp"
#include "core/history.hpp"
#include "core/simd.hpp"
#include "core/surrogate.hpp"
#include "obs/json_util.hpp"
#include "space/parameter_space.hpp"

namespace hpb {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_ns(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

/// An all-discrete space whose cross product is exactly 2^log2_pool,
/// factored into 16-level parameters plus one remainder parameter.
space::SpacePtr discrete_space(std::size_t log2_pool) {
  auto s = std::make_shared<space::ParameterSpace>();
  std::size_t p = 0;
  for (; p + 4 <= log2_pool; p += 4) {
    s->add(space::Parameter::integer("p" + std::to_string(p / 4), 0, 15));
  }
  if (p < log2_pool) {
    s->add(space::Parameter::integer(
        "rem", 0, (std::int64_t{1} << (log2_pool - p)) - 1));
  }
  return s;
}

/// Mixed space: one 16-level discrete knob and one continuous knob.
space::SpacePtr mixed_space() {
  auto s = std::make_shared<space::ParameterSpace>();
  s->add(space::Parameter::integer("level", 0, 15));
  s->add(space::Parameter::continuous("t", 0.0, 1.0));
  return s;
}

/// Pool for the mixed space: 16 levels crossed with a 64-point value grid,
/// tiled to `size` rows — the gridded-value case the distinct-value memo is
/// built for (64 distinct values, size/64 repeats each).
std::vector<space::Configuration> mixed_pool(std::size_t size) {
  std::vector<space::Configuration> pool;
  pool.reserve(size);
  for (std::size_t j = 0; j < size; ++j) {
    const double level = static_cast<double>(j % 16);
    const double t = static_cast<double>((j / 16) % 64) / 64.0;
    pool.push_back(space::Configuration({level, t}));
  }
  return pool;
}

/// A history of `n` uniform configurations with a separable objective
/// (plus a tie-breaking ramp), giving the surrogate a non-trivial split.
core::History make_history(const space::SpacePtr& space, std::size_t n,
                           Rng& rng) {
  core::History h;
  for (std::size_t i = 0; i < n; ++i) {
    space::Configuration c = space->sample_uniform(rng);
    double y = static_cast<double>(i) * 1e-6;
    for (std::size_t p = 0; p < c.size(); ++p) {
      const double d = c[p] - 1.0;
      y += d * d;
    }
    h.add(std::move(c), y);
  }
  return h;
}

struct Measurement {
  std::string scenario;
  std::size_t pool_size = 0;
  std::size_t history = 0;
  std::size_t params = 0;
  std::size_t threads = 0;          // workers used by the parallel sweep
  bool direct_measured = false;     // direct reference timed (<= 2^22)
  std::uint64_t direct_ns = 0;      // serial per-candidate direct scoring
  std::uint64_t table_build_ns = 0;  // score-table construction (per fit)
  std::uint64_t table_sweep_ns = 0;  // serial per-candidate table lookups
  std::uint64_t vector_sweep_ns = 0;  // serial score_block (active tier)
  std::uint64_t parallel_sweep_ns = 0;  // score_block on the thread pool
  std::uint64_t bytes_swept = 0;    // column + ordinal bytes one sweep reads
};

/// Best-of-`reps` timing of one sweep path; the winning hit is checked
/// against `expect` bitwise when provided.
template <class Fn>
std::uint64_t best_of(std::size_t reps, const Fn& fn,
                      const core::SweepHit* expect) {
  std::uint64_t best = ~std::uint64_t{0};
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    const std::vector<core::SweepHit> hits = fn();
    const auto t1 = Clock::now();
    best = std::min(best, elapsed_ns(t0, t1));
    if (expect != nullptr) {
      if (hits.empty() || hits.front().index != expect->index ||
          std::bit_cast<std::uint64_t>(hits.front().score) !=
              std::bit_cast<std::uint64_t>(expect->score)) {
        std::fprintf(stderr, "FATAL: sweep paths disagree\n");
        std::exit(1);
      }
    }
  }
  return best;
}

Measurement measure(const std::string& scenario, const space::SpacePtr& space,
                    const std::vector<space::Configuration>& pool,
                    const core::PoolColumns& columns, std::size_t history_size,
                    std::size_t reps, bool measure_direct, ThreadPool& workers,
                    Rng& rng) {
  const core::History h = make_history(space, history_size, rng);
  const core::TpeSurrogate s(space, h, 0.2);

  // Exclude the history's ordinals, like a real suggest would.
  std::vector<std::uint64_t> excluded_ordinals;
  if (space->is_finite()) {
    for (const auto& obs : h.observations()) {
      excluded_ordinals.push_back(space->ordinal_of(obs.config));
    }
    std::sort(excluded_ordinals.begin(), excluded_ordinals.end());
  }
  const auto excluded = [&](std::size_t j) {
    if (excluded_ordinals.empty()) {
      return false;
    }
    return std::binary_search(excluded_ordinals.begin(),
                              excluded_ordinals.end(), columns.ordinals()[j]);
  };

  Measurement m;
  m.scenario = scenario;
  m.pool_size = pool.size();
  m.history = history_size;
  m.params = space->num_params();
  m.threads = workers.size();
  m.direct_measured = measure_direct;
  // One sweep streams every column (4 B/candidate/param) plus, on finite
  // spaces, the ordinal column (8 B/candidate) for the exclusion check.
  m.bytes_swept = pool.size() * (4 * space->num_params() +
                                 (columns.ordinals().empty() ? 0 : 8));

  const auto t0 = Clock::now();
  const core::AcquisitionTable table(s, columns);
  const auto t1 = Clock::now();
  m.table_build_ns = elapsed_ns(t0, t1);

  // Reference winner (and correctness oracle): the direct path where
  // feasible, otherwise the scalar per-candidate table sweep (bitwise-equal
  // to direct by construction, cross-checked at every smaller size).
  const auto table_scalar = [&] {
    return core::acquisition_topk(
        columns.size(), 1, nullptr,
        [&](std::size_t j) { return table.score(columns, j); }, excluded);
  };
  core::SweepHit expect;
  if (measure_direct) {
    const std::vector<core::SweepHit> reference = core::acquisition_topk(
        pool.size(), 1, nullptr,
        [&](std::size_t j) { return s.acquisition(pool[j]); }, excluded);
    expect = reference.front();
    m.direct_ns = best_of(
        reps,
        [&] {
          return core::acquisition_topk(
              pool.size(), 1, nullptr,
              [&](std::size_t j) { return s.acquisition(pool[j]); },
              excluded);
        },
        &expect);
  } else {
    expect = table_scalar().front();
  }

  m.table_sweep_ns = best_of(reps, table_scalar, &expect);
  m.vector_sweep_ns = best_of(
      reps,
      [&] {
        return core::acquisition_topk_table(table, columns, 1, nullptr,
                                            excluded);
      },
      &expect);
  m.parallel_sweep_ns = best_of(
      reps,
      [&] {
        return core::acquisition_topk_table(table, columns, 1, &workers,
                                            excluded);
      },
      &expect);
  // Cross-tier parity: the forced-scalar block sweep must agree too (the
  // unit suites prove full-vector bitwise equality; this is the bench's
  // cheap end-to-end guard).
  (void)best_of(
      1,
      [&] {
        return core::acquisition_topk_table(table, columns, 1, nullptr,
                                            excluded,
                                            core::SimdTier::kScalar);
      },
      &expect);
  return m;
}

/// Incremental re-fit: rebuild the score table after folding one pending
/// configuration into the surrogate's bad side (exactly what a
/// pending-aware async re-fit does between completions). The good-side
/// marginals are untouched, so the incremental constructor reuses their
/// columns; the result must stay bitwise identical to a full rebuild, and
/// the reuse must never lose to a full build (enforced in non-smoke runs).
struct RefitMeasurement {
  std::size_t pool_size = 0;
  std::size_t history = 0;
  std::size_t params = 0;
  std::uint64_t full_ns = 0;         // cold table build after the re-fit
  std::uint64_t incremental_ns = 0;  // build reusing the previous table
  std::size_t reused_columns = 0;
  std::size_t total_columns = 0;
};

RefitMeasurement measure_refit(const space::SpacePtr& space,
                               const std::vector<space::Configuration>& pool,
                               std::size_t history_size, std::size_t reps,
                               Rng& rng) {
  const core::History h = make_history(space, history_size, rng);
  const core::TpeSurrogate base(space, h, 0.2);
  const core::PoolColumns columns(*space, pool);
  const core::AcquisitionTable prev(base, columns);

  const std::vector<space::Configuration> pending{space->sample_uniform(rng)};
  const core::TpeSurrogate refit(space, h, 0.2, {}, nullptr, 0.0, pending);

  RefitMeasurement m;
  m.pool_size = pool.size();
  m.history = history_size;
  m.params = space->num_params();
  m.total_columns = 2 * space->num_params();

  m.full_ns = ~std::uint64_t{0};
  m.incremental_ns = ~std::uint64_t{0};
  for (std::size_t r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    const core::AcquisitionTable full(refit, columns);
    const auto t1 = Clock::now();
    const core::AcquisitionTable incremental(refit, columns, &prev);
    const auto t2 = Clock::now();
    m.full_ns = std::min(m.full_ns, elapsed_ns(t0, t1));
    m.incremental_ns = std::min(m.incremental_ns, elapsed_ns(t1, t2));
    m.reused_columns = incremental.reused_columns();
    if (r == 0) {
      for (std::size_t j = 0; j < columns.size(); ++j) {
        if (std::bit_cast<std::uint64_t>(full.score(columns, j)) !=
            std::bit_cast<std::uint64_t>(incremental.score(columns, j))) {
          std::fprintf(stderr,
                       "FATAL: incremental table diverges at candidate %zu\n",
                       j);
          std::exit(1);
        }
      }
    }
  }
  if (m.reused_columns == 0) {
    std::fprintf(stderr,
                 "FATAL: incremental refit reused no columns (good side "
                 "should be unchanged)\n");
    std::exit(1);
  }
  return m;
}

void append_refit_json(std::string& out, const RefitMeasurement& m) {
  out += "    {\"pool\":" + std::to_string(m.pool_size);
  out += ",\"history\":" + std::to_string(m.history);
  out += ",\"params\":" + std::to_string(m.params);
  out += ",\"full_build_ns\":" + std::to_string(m.full_ns);
  out += ",\"incremental_build_ns\":" + std::to_string(m.incremental_ns);
  out += ",\"reused_columns\":" + std::to_string(m.reused_columns);
  out += ",\"total_columns\":" + std::to_string(m.total_columns);
  out += ",\"speedup\":" +
         obs::json_double(static_cast<double>(m.full_ns) /
                          static_cast<double>(std::max<std::uint64_t>(
                              m.incremental_ns, 1)));
  out += "}";
}

double sweep_gbps(const Measurement& m) {
  return static_cast<double>(m.bytes_swept) /
         static_cast<double>(std::max<std::uint64_t>(m.vector_sweep_ns, 1));
}

void append_json(std::string& out, const Measurement& m,
                 std::string_view simd) {
  const double table =
      static_cast<double>(m.table_build_ns + m.table_sweep_ns);
  const double vec = static_cast<double>(m.table_build_ns + m.vector_sweep_ns);
  const double parallel =
      static_cast<double>(m.table_build_ns + m.parallel_sweep_ns);
  out += "    {\"scenario\":\"" + m.scenario + "\"";
  out += ",\"pool\":" + std::to_string(m.pool_size);
  out += ",\"history\":" + std::to_string(m.history);
  out += ",\"params\":" + std::to_string(m.params);
  out += ",\"threads\":" + std::to_string(m.threads);
  out += ",\"simd\":\"" + std::string(simd) + "\"";
  if (m.direct_measured) {
    const double direct = static_cast<double>(m.direct_ns);
    out += ",\"direct_ns\":" + std::to_string(m.direct_ns);
    out += ",\"speedup_table\":" + obs::json_double(direct / table);
    out += ",\"speedup_vector\":" + obs::json_double(direct / vec);
    out += ",\"speedup_parallel\":" + obs::json_double(direct / parallel);
  }
  out += ",\"table_build_ns\":" + std::to_string(m.table_build_ns);
  out += ",\"table_sweep_ns\":" + std::to_string(m.table_sweep_ns);
  out += ",\"vector_sweep_ns\":" + std::to_string(m.vector_sweep_ns);
  out += ",\"parallel_sweep_ns\":" + std::to_string(m.parallel_sweep_ns);
  out += ",\"speedup_vector_vs_table_sweep\":" +
         obs::json_double(static_cast<double>(m.table_sweep_ns) /
                          static_cast<double>(std::max<std::uint64_t>(
                              m.vector_sweep_ns, 1)));
  out += ",\"bytes_swept\":" + std::to_string(m.bytes_swept);
  out += ",\"gbps_vector\":" + obs::json_double(sweep_gbps(m));
  out += "}";
}

int run(bool smoke, std::size_t threads, const std::string& out_path) {
  const std::vector<std::size_t> log2_pools =
      smoke ? std::vector<std::size_t>{12, 14}
            : std::vector<std::size_t>{12, 14, 16, 18, 20, 22, 23, 24};
  // The direct path at 2^23+ would dominate the bench's runtime for a
  // number that stopped being informative at 2^20; the scalar table sweep
  // is the oracle above this.
  constexpr std::size_t kMaxDirectLog2 = 22;
  const std::vector<std::size_t> histories =
      smoke ? std::vector<std::size_t>{25} : std::vector<std::size_t>{25, 100, 400};

  ThreadPool workers(threads);  // 0 = hardware concurrency
  const std::string_view simd = core::simd_tier_name(core::active_simd_tier());
  Rng rng(0xacc5eed);
  std::vector<Measurement> results;

  std::printf("simd tier: %s, parallel-sweep threads: %zu\n",
              std::string(simd).c_str(), workers.size());
  std::printf("%-10s %10s %8s %14s %14s %14s %14s %9s\n", "scenario", "pool",
              "history", "direct_ns", "table_ns", "vector_ns", "parallel_ns",
              "vec_gain");
  for (const std::size_t log2_pool : log2_pools) {
    const space::SpacePtr space = discrete_space(log2_pool);
    const std::vector<space::Configuration> pool = space->enumerate();
    const core::PoolColumns columns(*space, pool);
    for (const std::size_t history : histories) {
      const std::size_t reps = smoke ? 1
                                     : std::clamp<std::size_t>(
                                           (std::size_t{1} << 22) >> log2_pool,
                                           3, 64);
      Measurement m =
          measure("discrete", space, pool, columns, history, reps,
                  log2_pool <= kMaxDirectLog2, workers, rng);
      std::printf("%-10s %10zu %8zu %14llu %14llu %14llu %14llu %8.1fx\n",
                  m.scenario.c_str(), m.pool_size, m.history,
                  static_cast<unsigned long long>(m.direct_ns),
                  static_cast<unsigned long long>(m.table_sweep_ns),
                  static_cast<unsigned long long>(m.vector_sweep_ns),
                  static_cast<unsigned long long>(m.parallel_sweep_ns),
                  static_cast<double>(m.table_sweep_ns) /
                      static_cast<double>(
                          std::max<std::uint64_t>(m.vector_sweep_ns, 1)));
      results.push_back(std::move(m));
    }
  }
  {
    const space::SpacePtr space = mixed_space();
    const std::size_t pool_size = smoke ? (1u << 12) : (1u << 16);
    const std::vector<space::Configuration> pool = mixed_pool(pool_size);
    const core::PoolColumns columns(*space, pool);
    for (const std::size_t history : histories) {
      Measurement m = measure("mixed", space, pool, columns, history,
                              smoke ? 1 : 8, true, workers, rng);
      std::printf("%-10s %10zu %8zu %14llu %14llu %14llu %14llu %8.1fx\n",
                  m.scenario.c_str(), m.pool_size, m.history,
                  static_cast<unsigned long long>(m.direct_ns),
                  static_cast<unsigned long long>(m.table_sweep_ns),
                  static_cast<unsigned long long>(m.vector_sweep_ns),
                  static_cast<unsigned long long>(m.parallel_sweep_ns),
                  static_cast<double>(m.table_sweep_ns) /
                      static_cast<double>(
                          std::max<std::uint64_t>(m.vector_sweep_ns, 1)));
      results.push_back(std::move(m));
    }
  }

  std::vector<RefitMeasurement> refits;
  bool refit_regressed = false;
  {
    const std::vector<std::size_t> refit_pools =
        smoke ? std::vector<std::size_t>{12}
              : std::vector<std::size_t>{12, 16, 20};
    std::printf("%-10s %10s %8s %14s %14s %7s %9s\n", "refit", "pool",
                "history", "full_ns", "increm_ns", "reused", "speedup");
    for (const std::size_t log2_pool : refit_pools) {
      const space::SpacePtr space = discrete_space(log2_pool);
      const std::vector<space::Configuration> pool = space->enumerate();
      for (const std::size_t history : histories) {
        RefitMeasurement m =
            measure_refit(space, pool, history, smoke ? 1 : 128, rng);
        const double speedup =
            static_cast<double>(m.full_ns) /
            static_cast<double>(std::max<std::uint64_t>(m.incremental_ns, 1));
        std::printf("%-10s %10zu %8zu %14llu %14llu %3zu/%-3zu %8.1fx\n",
                    "refit", m.pool_size, m.history,
                    static_cast<unsigned long long>(m.full_ns),
                    static_cast<unsigned long long>(m.incremental_ns),
                    m.reused_columns, m.total_columns, speedup);
        if (!smoke && speedup < 1.0) {
          refit_regressed = true;
        }
        refits.push_back(m);
      }
    }
  }

  // Bandwidth ceiling: effective GB/s of the vector sweep at the largest
  // discrete pools. When doubling the pool no longer raises (or slightly
  // lowers) GB/s, the sweep is memory-bandwidth-bound, not compute-bound.
  std::string bandwidth_note = "vector sweep effective GB/s by pool:";
  for (const Measurement& m : results) {
    if (m.scenario == "discrete" && m.history == 100 &&
        m.pool_size >= (1u << 20)) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), " %zu=%.2f", m.pool_size,
                    sweep_gbps(m));
      bandwidth_note += buf;
    }
  }
  bandwidth_note +=
      "; GB/s plateaus across 2^20-2^24 while per-candidate compute is ~1 ns"
      " — the sweep is memory-bandwidth-bound at these sizes";

  std::string json = "{\n  \"bench\": \"acquisition_sweep\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"threads\": " + std::to_string(workers.size()) + ",\n";
  json += "  \"simd\": \"" + std::string(simd) + "\",\n";
  json += "  \"simd_detected\": \"" +
          std::string(core::simd_tier_name(core::detected_simd_tier())) +
          "\",\n";
  if (!smoke) {
    json += "  \"bandwidth_note\": \"" + bandwidth_note + "\",\n";
  }
  json += "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    append_json(json, results[i], simd);
    json += i + 1 < results.size() ? ",\n" : "\n";
  }
  json += "  ],\n  \"refit_results\": [\n";
  for (std::size_t i = 0; i < refits.size(); ++i) {
    append_refit_json(json, refits[i]);
    json += i + 1 < refits.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  if (refit_regressed) {
    std::fprintf(stderr,
                 "FATAL: incremental refit slower than a full build at some "
                 "recorded size (speedup < 1.0)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace hpb

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t threads = 0;  // hardware concurrency
  std::string out_path = "BENCH_acquisition.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--threads N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  return hpb::run(smoke, threads, out_path);
}
