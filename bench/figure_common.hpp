// Shared driver for the Fig. 2–6 configuration-selection benchmarks: runs
// HiPerBOt vs GEIST vs Random on one dataset at the paper's sample-size
// checkpoints, prints the figure's two panels (best configuration, recall)
// as tables, and writes a tidy CSV under bench_results/.
//
// Environment:
//   HPB_REPS     replications per method (default 20; the paper uses 50).
//   HPB_THREADS  worker threads for replicated runs (default 1 = serial;
//                results are identical regardless).
//   HPB_BATCH    suggest/observe batch size inside each run (default 1 =
//                the paper's serial protocol; larger batches amortize
//                surrogate fits and change the curves accordingly).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "tabular/tabular_objective.hpp"

namespace hpb::benchfig {

struct FigureSpec {
  std::string title;            // e.g. "Figure 2: Kripke execution time"
  std::string csv_name;         // e.g. "fig2_kripke_exec"
  std::vector<std::size_t> sample_sizes;
  double recall_percentile = 5.0;  // ℓ of eq. 11
  std::size_t default_reps = 20;
  std::uint64_t seed = 0x5eedbeef;
  /// Paper-quoted reference (expert / -O3) value to print, if any.
  double reference_value = -1.0;
  std::string reference_label;
};

/// Run the three §V methods and report. Returns 0 (main()-compatible).
int run_selection_figure(tabular::TabularObjective& dataset,
                         const FigureSpec& spec);

/// Create bench_results/ (if needed) and return "bench_results/<name>.csv".
[[nodiscard]] std::string csv_path(const std::string& name);

}  // namespace hpb::benchfig
