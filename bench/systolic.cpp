// Constrained-space shootout on the full systolic-array design space: the
// raw cross product is ~2^33.9 — far past anything that can be enumerated —
// so HiPerBOt sweeps it with the streamed CandidateStream path while the
// pool-bound baselines (GEIST, GP-EI, ridge, random) search a seeded
// sample_pool() subset of the valid set. Writes per-seed best values and
// aggregates to BENCH_systolic.json.
//
// Usage: systolic [--smoke] [--out PATH]
//   --smoke   3 seeds, budget 16, 512-candidate baseline pool (CI wiring)
//   default   21 seeds, budget 200, 4096-candidate baseline pool
//
// The default budget is deliberately past the paper's 60-sample regime: the
// full systolic space has 10-level tile parameters, so the TPE marginals
// need ~30+ good-split observations before they sharpen; random's
// best-so-far gains stall right there (quantile ~1/n) while HiPerBOt's
// compound — the gap at 200 evaluations is the point of the comparison.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/systolic.hpp"
#include "baselines/config_graph.hpp"
#include "baselines/geist.hpp"
#include "baselines/gp_tuner.hpp"
#include "baselines/random_search.hpp"
#include "baselines/ridge_tuner.hpp"
#include "common/rng.hpp"
#include "core/hiperbot.hpp"
#include "core/loop.hpp"
#include "space/candidate_stream.hpp"

namespace hpb {
namespace {

struct MethodResult {
  std::string name;
  std::vector<double> best_values;  // one per seed
};

double median_of(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

void append_json_doubles(std::string& json, const std::vector<double>& v) {
  json += '[';
  char buf[32];
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 0) {
      json += ',';
    }
    std::snprintf(buf, sizeof(buf), "%.17g", v[i]);
    json += buf;
  }
  json += ']';
}

int run(bool smoke, const std::string& out_path) {
  const std::size_t seeds = smoke ? 3 : 21;
  const std::size_t budget = smoke ? 16 : 200;
  const std::size_t pool_size = smoke ? 512 : 4096;

  apps::SystolicObjective objective;  // the full workload
  const space::SpacePtr space = objective.space_ptr();
  const std::uint64_t raw = space->cross_product_size();
  if (!space->cross_product_exceeds(1ULL << 30)) {
    std::fprintf(stderr, "systolic space shrank below 2^30 raw configs\n");
    return 1;
  }

  // Seeded deterministic stand-in pool for the pool-bound baselines; the
  // streamed HiPerBOt never sees it (and never materializes anything).
  const space::CandidateStream stream(space, /*seed=*/0x5157011C, {});
  std::printf("systolic shootout: raw space %.3g (2^%.1f), baseline pool %zu,"
              " budget %zu, seeds %zu\n",
              static_cast<double>(raw),
              std::log2(static_cast<double>(raw)), pool_size, budget, seeds);
  const auto pool =
      std::make_shared<const std::vector<space::Configuration>>(
          stream.sample_pool(pool_size));
  const auto graph =
      std::make_shared<const baselines::ConfigGraph>(*space, *pool);

  using TunerFactory =
      std::function<std::unique_ptr<core::Tuner>(std::uint64_t)>;
  const std::vector<std::pair<std::string, TunerFactory>> methods = {
      {"hiperbot",
       [&](std::uint64_t seed) {
         // No pool: the finite-but-huge space routes to the streamed sweep.
         return std::make_unique<core::HiPerBOt>(space, core::HiPerBOtConfig{},
                                                 seed);
       }},
      {"geist",
       [&](std::uint64_t seed) {
         return std::make_unique<baselines::Geist>(
             space, baselines::GeistConfig{}, seed, pool, graph);
       }},
      {"gp",
       [&](std::uint64_t seed) {
         return std::make_unique<baselines::GpTuner>(
             space, baselines::GpConfig{}, seed, pool);
       }},
      {"ridge",
       [&](std::uint64_t seed) {
         return std::make_unique<baselines::RidgeTuner>(
             space, baselines::RidgeConfig{}, seed, pool);
       }},
      {"random",
       [&](std::uint64_t seed) {
         return std::make_unique<baselines::RandomSearch>(space, seed, pool);
       }},
  };

  std::vector<MethodResult> results;
  for (const auto& [name, make] : methods) {
    MethodResult r;
    r.name = name;
    Rng seeder(0x5157011C + results.size());
    for (std::size_t rep = 0; rep < seeds; ++rep) {
      auto tuner = make(seeder.next_u64());
      const auto run_result = core::run_tuning(*tuner, objective, budget);
      r.best_values.push_back(run_result.best_value);
    }
    std::printf("%-10s median %.6g  min %.6g  max %.6g\n", name.c_str(),
                median_of(r.best_values),
                *std::min_element(r.best_values.begin(), r.best_values.end()),
                *std::max_element(r.best_values.begin(), r.best_values.end()));
    results.push_back(std::move(r));
  }

  const double hiperbot_median = median_of(results.front().best_values);
  const double random_median = median_of(results.back().best_values);
  std::printf("hiperbot median %.6g vs random median %.6g (%s)\n",
              hiperbot_median, random_median,
              hiperbot_median < random_median ? "hiperbot wins"
                                              : "random wins");

  std::string json = "{\n  \"bench\": \"systolic_shootout\",\n";
  json += "  \"smoke\": " + std::string(smoke ? "true" : "false") + ",\n";
  json += "  \"raw_space\": " + std::to_string(raw) + ",\n";
  json += "  \"baseline_pool\": " + std::to_string(pool_size) + ",\n";
  json += "  \"budget\": " + std::to_string(budget) + ",\n";
  json += "  \"seeds\": " + std::to_string(seeds) + ",\n";
  json += "  \"results\": [\n";
  char buf[64];
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    json += "    {\"method\":\"" + r.name + "\",";
    std::snprintf(buf, sizeof(buf), "\"median\":%.17g,",
                  median_of(r.best_values));
    json += buf;
    json += "\"best_values\":";
    append_json_doubles(json, r.best_values);
    json += '}';
    json += i + 1 < results.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return hiperbot_median < random_median ? 0 : 1;
}

}  // namespace
}  // namespace hpb

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_systolic.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out PATH]\n", argv[0]);
      return 2;
    }
  }
  return hpb::run(smoke, out_path);
}
