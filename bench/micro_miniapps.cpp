// Microbenchmarks (google-benchmark) for the live mini-applications:
// per-layout timings of the MiniSweep transport kernel (the measured
// analogue of Kripke's nesting study) and per-solver timings of the
// MiniSolver Poisson suite.
#include <benchmark/benchmark.h>

#include "apps/minisolver.hpp"
#include "apps/minisweep.hpp"

namespace {

void BM_MiniSweepLayout(benchmark::State& state) {
  hpb::apps::MiniSweepWorkload workload;
  workload.zones = 32;
  workload.groups = 16;
  workload.directions = 8;
  workload.sweeps = 1;
  workload.repeats = 1;
  hpb::apps::MiniSweepObjective obj(workload);
  // Configuration: the chosen nesting with unblocked group/direction loops.
  hpb::space::Configuration c(std::vector<double>{
      static_cast<double>(state.range(0)), 0, 0, 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj.evaluate(c));
  }
  state.SetLabel(obj.space().param(0).level_label(
      static_cast<std::size_t>(state.range(0))));
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(workload.zones * workload.zones *
                           workload.groups * workload.directions));
}
BENCHMARK(BM_MiniSweepLayout)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

void BM_MiniSweepBlocking(benchmark::State& state) {
  hpb::apps::MiniSweepWorkload workload;
  workload.zones = 32;
  workload.groups = 16;
  workload.directions = 8;
  workload.sweeps = 1;
  workload.repeats = 1;
  hpb::apps::MiniSweepObjective obj(workload);
  // DGZ nesting with varying group-set blocking.
  hpb::space::Configuration c(std::vector<double>{
      0, static_cast<double>(state.range(0)), 0, 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj.evaluate(c));
  }
  state.SetLabel("Gset=" + obj.space().param(1).level_label(
                               static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_MiniSweepBlocking)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_MiniSolverMethod(benchmark::State& state) {
  hpb::apps::MiniSolverWorkload workload;
  workload.grid = 32;
  workload.tolerance = 1e-6;
  workload.max_iters = 4000;
  workload.repeats = 1;
  hpb::apps::MiniSolverObjective obj(workload);
  hpb::space::Configuration c(std::vector<double>{
      static_cast<double>(state.range(0)), /*omega=1.4*/ 3, /*sweeps=*/0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(obj.evaluate(c));
  }
  state.SetLabel(obj.space().param(0).level_label(
                     static_cast<std::size_t>(state.range(0))) +
                 " iters=" + std::to_string(obj.last_iterations()));
}
BENCHMARK(BM_MiniSolverMethod)
    ->DenseRange(0, 6)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
