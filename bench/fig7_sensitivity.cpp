// Figure 7: sensitivity of HiPerBOt to its two hyperparameters across all
// five application datasets.
//   (a) number of initial random samples, swept 10..100 with the total
//       budget fixed at 150;
//   (b) quantile threshold for the good/bad split, swept 0.01..0.5.
// The y-metric is the ratio (best value selected by HiPerBOt) /
// (exhaustive best) — 1.0 is optimal, as in the paper.
#include <algorithm>
#include <fstream>
#include <iostream>

#include "apps/registry.hpp"
#include "core/engine.hpp"
#include "core/hiperbot.hpp"
#include "eval/experiment.hpp"
#include "eval/report.hpp"
#include "figure_common.hpp"
#include "stats/summary.hpp"

namespace {

constexpr std::size_t kTotalBudget = 150;

/// Mean best/exhaustive ratio over reps for one dataset and config.
hpb::stats::RunningStats run_ratio(hpb::tabular::TabularObjective& dataset,
                                   const hpb::core::HiPerBOtConfig& config,
                                   std::size_t reps, std::uint64_t seed) {
  hpb::stats::RunningStats out;
  hpb::Rng seeder(seed);
  const auto pool =
      std::make_shared<const std::vector<hpb::space::Configuration>>(
          dataset.configs().begin(), dataset.configs().end());
  for (std::size_t rep = 0; rep < reps; ++rep) {
    hpb::core::HiPerBOt tuner(dataset.space_ptr(), config, seeder.next_u64(),
                              pool);
    const hpb::core::TuningEngine engine(
        {.batch_size = hpb::eval::batch_from_env(1)});
    const auto result = engine.run(tuner, dataset, kTotalBudget);
    out.add(result.best_value / dataset.best_value());
  }
  return out;
}

}  // namespace

int main() {
  const std::size_t reps = hpb::eval::reps_from_env(10);
  std::ofstream csv(hpb::benchfig::csv_path("fig7_sensitivity"));
  csv << "sweep,dataset,value,ratio_mean,ratio_std\n";

  std::cout << "Figure 7: HiPerBOt hyperparameter sensitivity (total budget "
            << kTotalBudget << ", reps " << reps << ")\n";
  std::cout << "metric: best-selected / exhaustive-best (1.0 = optimal)\n\n";

  const std::vector<std::size_t> initial_sweep = {10, 20, 40, 60, 80, 100};
  const std::vector<double> threshold_sweep = {0.01, 0.05, 0.1,
                                               0.2,  0.3,  0.4, 0.5};

  std::cout << "(a) initial sample size (threshold fixed at 0.2):\n";
  std::cout << "dataset        ";
  for (std::size_t v : initial_sweep) {
    std::cout << "  n=" << v << "\t";
  }
  std::cout << '\n';
  for (const auto& info : hpb::apps::dataset_registry()) {
    auto dataset = info.make();
    std::cout << info.name << std::string(15 - std::min<std::size_t>(
                                                    15, info.name.size()),
                                          ' ');
    for (std::size_t v : initial_sweep) {
      hpb::core::HiPerBOtConfig config;
      config.initial_samples = v;
      config.quantile = 0.2;
      const auto stats = run_ratio(dataset, config, reps, 0xF16'7A + v);
      std::cout << "  " << hpb::eval::format_mean_std(stats) << "\t";
      csv << "initial," << info.name << ',' << v << ',' << stats.mean() << ','
          << stats.stddev() << '\n';
    }
    std::cout << '\n';
  }

  std::cout << "\n(b) quantile threshold (initial samples fixed at 20):\n";
  std::cout << "dataset        ";
  for (double v : threshold_sweep) {
    std::cout << "  a=" << v << "\t";
  }
  std::cout << '\n';
  for (const auto& info : hpb::apps::dataset_registry()) {
    auto dataset = info.make();
    std::cout << info.name << std::string(15 - std::min<std::size_t>(
                                                    15, info.name.size()),
                                          ' ');
    for (double v : threshold_sweep) {
      hpb::core::HiPerBOtConfig config;
      config.initial_samples = 20;
      config.quantile = v;
      const auto stats = run_ratio(
          dataset, config, reps,
          0xF16'7B + static_cast<std::uint64_t>(v * 1000));
      std::cout << "  " << hpb::eval::format_mean_std(stats) << "\t";
      csv << "threshold," << info.name << ',' << v << ',' << stats.mean()
          << ',' << stats.stddev() << '\n';
    }
    std::cout << '\n';
  }

  std::cout << "\nwrote " << hpb::benchfig::csv_path("fig7_sensitivity")
            << '\n';
  return 0;
}
