// Table I: relative ranking of parameters by JS divergence between the
// good- and bad-configuration densities (§VI), reported twice per dataset:
//   - "10% samples": the surrogate is built from a HiPerBOt run whose
//     budget is 10% of the dataset;
//   - "All samples": the densities are built from the full dataset
//     (the actual ranking).
#include <fstream>
#include <iomanip>
#include <iostream>

#include "apps/registry.hpp"
#include "core/engine.hpp"
#include "core/hiperbot.hpp"
#include "core/importance.hpp"
#include "eval/experiment.hpp"
#include "figure_common.hpp"

namespace {

void print_entries(const std::vector<hpb::core::ImportanceEntry>& entries) {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i != 0) {
      std::cout << ", ";
    }
    std::cout << entries[i].parameter << '(' << std::fixed
              << std::setprecision(2) << entries[i].js_divergence << ')';
  }
  std::cout << '\n';
}

}  // namespace

int main() {
  const std::size_t reps = hpb::eval::reps_from_env(1);
  (void)reps;  // importance is computed from one deterministic run per app
  std::ofstream csv(hpb::benchfig::csv_path("table1_importance"));
  csv << "dataset,mode,parameter,js_divergence,rank\n";

  std::cout << "Table I: relative ranking of parameters (JS divergence)\n\n";
  for (const auto& info : hpb::apps::dataset_registry()) {
    auto dataset = info.make();
    std::cout << "== " << info.name << " (" << dataset.size()
              << " configurations) ==\n";

    // 10%-sample column: surrogate-selected history, as in the paper.
    const std::size_t budget =
        std::max<std::size_t>(25, dataset.size() / 10);
    hpb::core::HiPerBOtConfig config;
    hpb::core::HiPerBOt tuner(dataset.space_ptr(), config, 0x7AB1E1);
    const hpb::core::TuningEngine engine(
        {.batch_size = hpb::eval::batch_from_env(1)});
    (void)engine.run(tuner, dataset, budget);
    std::vector<hpb::space::Configuration> configs;
    std::vector<double> values;
    for (const auto& obs : tuner.history().observations()) {
      configs.push_back(obs.config);
      values.push_back(obs.y);
    }
    const auto partial = hpb::core::parameter_importance(
        dataset.space_ptr(), configs, values, config.quantile);
    std::cout << "10% samples (" << budget << "): ";
    print_entries(partial);
    for (std::size_t r = 0; r < partial.size(); ++r) {
      csv << info.name << ",partial," << partial[r].parameter << ','
          << partial[r].js_divergence << ',' << r << '\n';
    }

    // All-samples column: the actual ranking.
    const auto full = hpb::core::dataset_importance(dataset, config.quantile);
    std::cout << "All samples:      ";
    print_entries(full);
    for (std::size_t r = 0; r < full.size(); ++r) {
      csv << info.name << ",full," << full[r].parameter << ','
          << full[r].js_divergence << ',' << r << '\n';
    }
    std::cout << '\n';
  }
  std::cout << "wrote " << hpb::benchfig::csv_path("table1_importance")
            << '\n';
  return 0;
}
