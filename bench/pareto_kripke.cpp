// Extension: bi-objective Kripke tuning — execution time vs energy under
// power capping, the two metrics the paper tunes separately (§V-A).
//
// Strategy: sweep the scalarization weight λ and tune the normalized
// objective λ·time + (1−λ)·energy with HiPerBOt; pool all evaluated
// configurations; report the discovered non-dominated set, its hypervolume
// relative to the exact Pareto front (from exhaustive evaluation), and the
// fraction of true Pareto-optimal configurations evaluated.
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <unordered_set>

#include "apps/kripke.hpp"
#include "core/engine.hpp"
#include "core/hiperbot.hpp"
#include "eval/experiment.hpp"
#include "eval/pareto.hpp"
#include "figure_common.hpp"

int main() {
  const std::size_t reps = hpb::eval::reps_from_env(3);
  const auto datasets = hpb::apps::make_kripke_time_energy();
  const auto& time_ds = datasets.time;
  const auto& energy_ds = datasets.energy;
  const std::size_t n = time_ds.size();

  // Exact front from exhaustive evaluation (the simulator makes this
  // possible; on a real machine it is the 19-hour sweep).
  std::vector<double> t(n), e(n);
  for (std::size_t i = 0; i < n; ++i) {
    t[i] = time_ds.value(i);
    e[i] = energy_ds.value_of(time_ds.config(i));
  }
  const auto true_front = hpb::eval::pareto_front(t, e);
  const double ref_t = time_ds.worst_value() * 1.05;
  const double ref_e = energy_ds.worst_value() * 1.05;
  const double true_hv = hpb::eval::hypervolume_2d(t, e, ref_t, ref_e);

  std::cout << "Bi-objective Kripke: time vs energy over " << n
            << " configurations\n"
            << "exact Pareto front: " << true_front.size()
            << " configurations, hypervolume " << std::fixed
            << std::setprecision(0) << true_hv << "\n\n";

  // Scalarization sweep: normalize both objectives to [0,1] using the
  // dataset ranges (a practitioner would use running estimates).
  const double t_lo = time_ds.best_value(), t_hi = time_ds.worst_value();
  const double e_lo = energy_ds.best_value(), e_hi = energy_ds.worst_value();
  const std::vector<double> lambdas = {0.0, 0.2, 0.4, 0.6, 0.8, 1.0};
  constexpr std::size_t kBudgetPerLambda = 80;

  std::ofstream csv(hpb::benchfig::csv_path("pareto_kripke"));
  csv << "rep,lambda,time,energy\n";

  const hpb::core::TuningEngine engine(
      {.batch_size = hpb::eval::batch_from_env(1)});
  hpb::Rng seeder(0xBA5E70);
  double hv_total = 0.0, covered_total = 0.0, evals_total = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    std::unordered_set<std::size_t> evaluated_rows;
    for (double lambda : lambdas) {
      auto scalarized = hpb::tabular::TabularObjective::from_function(
          "scalarized", time_ds.space_ptr(),
          [&](const hpb::space::Configuration& c) {
            const double tn =
                (time_ds.value_of(c) - t_lo) / (t_hi - t_lo);
            const double en =
                (energy_ds.value_of(c) - e_lo) / (e_hi - e_lo);
            return lambda * tn + (1.0 - lambda) * en;
          });
      hpb::core::HiPerBOt tuner(scalarized.space_ptr(), {}, seeder.next_u64());
      const auto result = engine.run(tuner, scalarized, kBudgetPerLambda);
      for (const auto& obs : result.history) {
        evaluated_rows.insert(time_ds.index_of(obs.config));
      }
      csv << rep << ',' << lambda << ','
          << time_ds.value_of(result.best_config) << ','
          << energy_ds.value_of(result.best_config) << '\n';
    }

    // Quality of the pooled evaluations.
    std::vector<double> ft, fe;
    for (std::size_t row : evaluated_rows) {
      ft.push_back(t[row]);
      fe.push_back(e[row]);
    }
    const double hv = hpb::eval::hypervolume_2d(ft, fe, ref_t, ref_e);
    std::size_t covered = 0;
    for (std::size_t idx : true_front) {
      if (evaluated_rows.contains(idx)) {
        ++covered;
      }
    }
    hv_total += hv / true_hv;
    covered_total +=
        static_cast<double>(covered) / static_cast<double>(true_front.size());
    evals_total += static_cast<double>(evaluated_rows.size());
  }

  const double inv = 1.0 / static_cast<double>(reps);
  std::cout << "scalarization sweep (" << lambdas.size() << " weights x "
            << kBudgetPerLambda << " evals, " << reps << " reps):\n"
            << std::setprecision(3)
            << "  mean evaluations used:        " << evals_total * inv
            << " of " << n << " ("
            << 100.0 * evals_total * inv / static_cast<double>(n) << "%)\n"
            << "  hypervolume vs exact front:   " << hv_total * inv << '\n'
            << "  true Pareto points evaluated: " << covered_total * inv
            << '\n';
  std::cout << "\nwrote " << hpb::benchfig::csv_path("pareto_kripke") << '\n';
  return 0;
}
