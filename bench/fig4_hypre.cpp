// Figure 4: HYPRE new_ij — best configuration and Recall vs sample size
// {41, 141, 241, 341, 441} over the 6-parameter solver space.
#include "apps/hypre.hpp"
#include "figure_common.hpp"

int main() {
  auto dataset = hpb::apps::make_hypre();
  hpb::benchfig::FigureSpec spec;
  spec.title = "Figure 4: HYPRE new_ij";
  spec.csv_name = "fig4_hypre";
  spec.sample_sizes = {41, 141, 241, 341, 441};
  spec.recall_percentile = 5.0;
  return hpb::benchfig::run_selection_figure(dataset, spec);
}
