// Load generator for the tuning service: drives thousands of interleaved
// sessions through a real LineServer socket and reports wire-level
// latency.
//
// Topology: one in-process SessionManager (journal-backed, LRU-evicting)
// behind a WireService + LineServer on a Unix socket; N worker threads,
// each holding one connection and a *window* of open sessions it
// round-robins across. The window interleaving is the point — a session is
// touched, left idle while its worker serves the rest of the window, and
// touched again, which is exactly the access pattern that drives LRU
// eviction and journal resume when max_resident < workers × window. Each
// session runs create → (suggest → evaluate client-side → observe)* →
// close for a fixed number of evaluations.
//
// All run artifacts (socket, session journals) live in a private mkdtemp
// directory that is removed on every exit path — normal return, die(),
// SIGINT/SIGTERM — so an interrupted bench never litters the repository
// with stray sockets.
//
// --chaos adds a survivability proof: the daemon runs as a *separate
// process* (this binary re-exec'd with --serve-child), a reference pass
// records every session's suggest sequence against an unharmed daemon,
// then a second pass SIGKILLs the daemon mid-storm, restarts it on the
// same session dir, resyncs every client from `status`, and requires the
// completed suggest sequences to be bitwise-identical to the reference —
// plus it measures kill→healthy recovery latency via the `health` verb.
//
// Reported (and written as JSON): client-observed p50/p99/mean latency per
// verb, sessions/sec, suggests/sec, the manager's eviction/resume
// counters, and (with --chaos) recovery latency and the bitwise verdict,
// so a perf or durability regression shows up as a number, not a feeling.
//
// Usage: service_storm [--smoke] [--chaos] [--sessions N] [--workers N]
//                      [--window N] [--evals N] [--batch N]
//                      [--max-resident N] [--method NAME] [--dataset NAME]
//                      [--out PATH]
//   --smoke   tiny run (CI wiring check, label `bench`)
//   --chaos   kill/restart survivability phase (spawns child daemons)
//   --out     JSON output path (default BENCH_service.json)
#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "apps/registry.hpp"
#include "core/session_manager.hpp"
#include "obs/json_util.hpp"
#include "service/factory.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "tabular/tabular_objective.hpp"

namespace hpb {
namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_ns(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

// ---------------------------------------------------------------------------
// Run-artifact cleanup, robust against every exit path.
//
// The signal handler may only touch async-signal-safe calls: it kills the
// chaos child (so no orphan daemon outlives the bench), unlinks the bound
// sockets, and _exits. The full temp-dir removal runs on the normal and
// die() paths, where std::filesystem is allowed.

char g_temp_dir[512] = "";
char g_socket_paths[2][512] = {"", ""};
std::atomic<int> g_child_pid{0};

void storm_signal_handler(int) {
  const int child = g_child_pid.load(std::memory_order_relaxed);
  if (child > 0) {
    ::kill(child, SIGKILL);
  }
  for (const char* path : g_socket_paths) {
    if (path[0] != '\0') {
      ::unlink(path);
    }
  }
  ::_exit(130);
}

void remove_run_artifacts() {
  const int child = g_child_pid.exchange(0, std::memory_order_relaxed);
  if (child > 0) {
    ::kill(child, SIGKILL);
    ::waitpid(child, nullptr, 0);
  }
  if (g_temp_dir[0] != '\0') {
    std::error_code ec;
    std::filesystem::remove_all(g_temp_dir, ec);
    g_temp_dir[0] = '\0';
  }
}

[[noreturn]] void die(const std::string& message) {
  std::fprintf(stderr, "service_storm: %s\n", message.c_str());
  remove_run_artifacts();
  std::exit(1);
}

void register_socket_path(std::size_t slot, const std::string& path) {
  if (slot < 2 && path.size() < sizeof(g_socket_paths[0])) {
    std::memcpy(g_socket_paths[slot], path.c_str(), path.size() + 1);
  }
}

std::string make_temp_dir() {
  const char* base = std::getenv("TMPDIR");
  std::string tmpl = std::string(base != nullptr && base[0] != '\0' ? base
                                                                    : "/tmp") +
                     "/hpb_storm.XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) {
    die("mkdtemp '" + tmpl + "': " + std::strerror(errno));
  }
  const std::string dir(buf.data());
  if (dir.size() < sizeof(g_temp_dir)) {
    std::memcpy(g_temp_dir, dir.c_str(), dir.size() + 1);
  }
  return dir;
}

/// Blocking line-oriented client over a Unix socket. `fatal` clients die()
/// on any socket error; non-fatal ones report it through connected() /
/// empty rpc() results (the chaos pass expects the daemon to vanish).
class LineClient {
 public:
  explicit LineClient(const std::string& path, bool fatal = true)
      : fatal_(fatal) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
      fail("socket: " + std::string(std::strerror(errno)));
      return;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      fail("connect '" + path + "': " + std::strerror(errno));
    }
  }
  ~LineClient() {
    if (fd_ >= 0) {
      ::close(fd_);
    }
  }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// One request, one response line. Returns "" (never valid JSON) when a
  /// non-fatal client loses the server mid-call.
  std::string rpc(const std::string& request) {
    if (fd_ < 0) {
      return {};
    }
    std::string out = request + "\n";
    std::string_view data = out;
    while (!data.empty()) {
      const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        fail("send: " + std::string(std::strerror(errno)));
        return {};
      }
      data.remove_prefix(static_cast<std::size_t>(n));
    }
    while (true) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n <= 0) {
        fail("server closed the connection mid-response");
        return {};
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  void fail(const std::string& message) {
    if (fatal_) {
      die(message);
    }
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  int fd_ = -1;
  bool fatal_ = true;
  std::string buffer_;
};

service::JsonValue expect_ok(const std::string& response) {
  service::JsonValue v = service::parse_json(response);
  const service::JsonValue* ok = v.find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
    die("request failed: " + response);
  }
  return v;
}

struct Percentiles {
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  std::size_t count = 0;
};

Percentiles summarize(std::vector<std::uint64_t>& ns) {
  Percentiles out;
  out.count = ns.size();
  if (ns.empty()) {
    return out;
  }
  std::sort(ns.begin(), ns.end());
  const auto at = [&](double q) {
    const std::size_t i = std::min(
        ns.size() - 1, static_cast<std::size_t>(q * double(ns.size() - 1)));
    return static_cast<double>(ns[i]) * 1e-6;
  };
  out.p50_ms = at(0.50);
  out.p99_ms = at(0.99);
  double sum = 0.0;
  for (const std::uint64_t v : ns) {
    sum += static_cast<double>(v);
  }
  out.mean_ms = sum * 1e-6 / static_cast<double>(ns.size());
  return out;
}

struct Options {
  std::size_t sessions = 10000;
  std::size_t workers = 8;
  std::size_t window = 32;
  std::size_t evals = 6;
  std::size_t batch = 2;
  std::size_t max_resident = 128;
  /// Evaluations per mode in the async-vs-sync throughput comparison
  /// (straggler-skewed simulated evaluation times).
  std::size_t compare_evals = 400;
  std::string method = "random";
  std::string dataset = "kripke";
  std::string out = "BENCH_service.json";
  bool smoke = false;
  bool chaos = false;
  /// This binary's own path (argv[0]); --chaos re-execs it with
  /// --serve-child to host the daemon out of process.
  std::string self;
};

// ---------------------------------------------------------------------------
// Async-vs-sync throughput comparison.
//
// Simulated straggler-skewed evaluation times (deterministic per eval
// index): most evaluations are fast, a few are stragglers an order of
// magnitude slower — the skew every shared HPC queue produces. A sync
// client must hold the whole round open until its slowest member returns;
// an async client observes each completion as it lands and immediately
// refills the slot with suggest count=1, so a straggler occupies one slot
// instead of stalling the round.

constexpr double kShortEvalMs = 0.2;
constexpr double kStragglerEvalMs = 8.0;
constexpr std::uint64_t kStragglerOneIn = 10;  // 10% stragglers

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

double eval_delay_ms(std::uint64_t seed, std::uint64_t index) {
  return splitmix64(seed * 0x100000001B3ULL + index) % kStragglerOneIn == 0
             ? kStragglerEvalMs
             : kShortEvalMs;
}

/// Parse one suggest/observe response's configs into value vectors.
std::vector<std::vector<double>> parse_configs(
    const service::JsonValue& response) {
  std::vector<std::vector<double>> out;
  const auto& configs = response.find("configs")->as_array();
  out.reserve(configs.size());
  for (const service::JsonValue& c : configs) {
    std::vector<double> values;
    values.reserve(c.as_array().size());
    for (const service::JsonValue& v : c.as_array()) {
      values.push_back(v.as_number());
    }
    out.push_back(std::move(values));
  }
  return out;
}

std::string config_json(const std::vector<double>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    out += (i > 0 ? "," : "") + obs::json_double(values[i]);
  }
  out += ']';
  return out;
}

double evaluate_values(tabular::TabularObjective& dataset,
                       const std::vector<double>& values) {
  space::Configuration config;
  config.values() = values;
  return dataset.evaluate_result(config).value;
}

/// Sync mode: whole rounds, each held open for its slowest member.
double run_compare_sync(const std::string& socket_path,
                        tabular::TabularObjective& dataset,
                        const Options& opt, std::size_t evals,
                        std::size_t batch) {
  LineClient client(socket_path);
  expect_ok(client.rpc(
      "{\"verb\":\"create\",\"session\":\"cmp_sync\",\"dataset\":\"" +
      opt.dataset + "\",\"method\":\"hiperbot\",\"batch_size\":" +
      std::to_string(batch) + ",\"max_evaluations\":" +
      std::to_string(evals) + ",\"seed\":1}"));
  const auto t0 = Clock::now();
  std::size_t done = 0;
  std::uint64_t index = 0;
  while (done < evals) {
    const service::JsonValue suggest = expect_ok(
        client.rpc("{\"verb\":\"suggest\",\"session\":\"cmp_sync\"}"));
    const std::vector<std::vector<double>> configs = parse_configs(suggest);
    double round_ms = 0.0;
    std::string results = "[";
    for (std::size_t i = 0; i < configs.size(); ++i) {
      round_ms = std::max(round_ms, eval_delay_ms(1, index++));
      if (i > 0) {
        results += ',';
      }
      results += "{\"config\":" + config_json(configs[i]) + ",\"y\":" +
                 obs::json_double(evaluate_values(dataset, configs[i])) + "}";
    }
    results += ']';
    // The round completes when its slowest evaluation does.
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(round_ms));
    expect_ok(client.rpc("{\"verb\":\"observe\",\"session\":\"cmp_sync\","
                         "\"results\":" + results + "}"));
    done += configs.size();
  }
  const double wall_s =
      static_cast<double>(elapsed_ns(t0, Clock::now())) * 1e-9;
  expect_ok(client.rpc("{\"verb\":\"close\",\"session\":\"cmp_sync\"}"));
  return wall_s;
}

/// Async mode: a window of outstanding tokens; each completion is observed
/// the moment it lands and its slot refilled with suggest count=1.
double run_compare_async(const std::string& socket_path,
                         tabular::TabularObjective& dataset,
                         const Options& opt, std::size_t evals,
                         std::size_t batch) {
  LineClient client(socket_path);
  expect_ok(client.rpc(
      "{\"verb\":\"create\",\"session\":\"cmp_async\",\"dataset\":\"" +
      opt.dataset + "\",\"method\":\"hiperbot\",\"mode\":\"async\","
      "\"batch_size\":" + std::to_string(batch) + ",\"max_evaluations\":" +
      std::to_string(evals) + ",\"seed\":1}"));
  struct InFlight {
    Clock::time_point ready;
    std::uint64_t token = 0;
    double y = 0.0;
  };
  const auto later = [](const InFlight& a, const InFlight& b) {
    return a.ready > b.ready;
  };
  std::vector<InFlight> heap;  // min-heap on completion time
  const auto t0 = Clock::now();
  std::uint64_t index = 0;
  std::size_t issued = 0;
  const auto issue = [&](std::size_t count) {
    const service::JsonValue suggest = expect_ok(client.rpc(
        "{\"verb\":\"suggest\",\"session\":\"cmp_async\",\"count\":" +
        std::to_string(count) + "}"));
    const std::vector<std::vector<double>> configs = parse_configs(suggest);
    const auto& tokens = suggest.find("tokens")->as_array();
    for (std::size_t i = 0; i < configs.size(); ++i) {
      InFlight f;
      f.ready = Clock::now() +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        eval_delay_ms(1, index++)));
      f.token = static_cast<std::uint64_t>(tokens[i].as_number());
      f.y = evaluate_values(dataset, configs[i]);
      heap.push_back(f);
      std::push_heap(heap.begin(), heap.end(), later);
      ++issued;
    }
  };
  issue(batch);
  std::size_t done = 0;
  while (done < evals) {
    std::pop_heap(heap.begin(), heap.end(), later);
    const InFlight f = heap.back();
    heap.pop_back();
    std::this_thread::sleep_until(f.ready);
    expect_ok(client.rpc(
        "{\"verb\":\"observe\",\"session\":\"cmp_async\",\"results\":"
        "[{\"token\":" + std::to_string(f.token) + ",\"y\":" +
        obs::json_double(f.y) + "}]}"));
    ++done;
    if (issued < evals) {
      issue(1);
    }
  }
  const double wall_s =
      static_cast<double>(elapsed_ns(t0, Clock::now())) * 1e-9;
  expect_ok(client.rpc("{\"verb\":\"close\",\"session\":\"cmp_async\"}"));
  return wall_s;
}

struct WorkerStats {
  std::vector<std::uint64_t> suggest_ns;
  std::vector<std::uint64_t> observe_ns;
  std::size_t sessions_completed = 0;
};

/// One open session as the client sees it: its name and how far along it
/// is.
struct SlotState {
  std::string name;
  std::size_t evals_done = 0;
  bool active = false;
};

void run_worker(const Options& opt, const std::string& socket_path,
                tabular::TabularObjective& dataset,
                std::atomic<std::size_t>& next_session, WorkerStats& stats) {
  LineClient client(socket_path);
  std::vector<SlotState> window(opt.window);
  const std::string create_suffix =
      std::string("\",\"dataset\":\"") + opt.dataset + "\",\"method\":\"" +
      opt.method + "\",\"batch_size\":" + std::to_string(opt.batch) +
      ",\"max_evaluations\":" + std::to_string(opt.evals) + ",\"seed\":";

  std::size_t active = 0;
  bool draining = false;
  std::size_t slot = 0;
  while (true) {
    // Fill empty slots with fresh sessions until the global quota is out.
    if (!draining) {
      for (SlotState& s : window) {
        if (s.active) {
          continue;
        }
        const std::size_t id =
            next_session.fetch_add(1, std::memory_order_relaxed);
        if (id >= opt.sessions) {
          draining = true;
          break;
        }
        s.name = "s" + std::to_string(id);
        s.evals_done = 0;
        s.active = true;
        ++active;
        expect_ok(client.rpc("{\"verb\":\"create\",\"session\":\"" + s.name +
                             create_suffix + std::to_string(id) + "}"));
      }
    }
    if (active == 0) {
      return;  // drained: every session this worker owned is closed
    }
    // Round-robin: one suggest/observe round for the next active slot.
    while (!window[slot % opt.window].active) {
      ++slot;
    }
    SlotState& s = window[slot % opt.window];
    ++slot;

    const auto t0 = Clock::now();
    const service::JsonValue suggest = expect_ok(
        client.rpc("{\"verb\":\"suggest\",\"session\":\"" + s.name + "\"}"));
    stats.suggest_ns.push_back(elapsed_ns(t0, Clock::now()));

    // Evaluate client-side against the same tabular dataset the service
    // tunes over — the remote-evaluation split the service exists for.
    std::string results = "[";
    const auto& configs = suggest.find("configs")->as_array();
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const auto& values = configs[i].as_array();
      space::Configuration config;
      config.values().reserve(values.size());
      std::string config_json = "[";
      for (std::size_t j = 0; j < values.size(); ++j) {
        config.values().push_back(values[j].as_number());
        config_json +=
            (j > 0 ? "," : "") + obs::json_double(values[j].as_number());
      }
      config_json += ']';
      const tabular::EvalResult r = dataset.evaluate_result(config);
      if (i > 0) {
        results += ',';
      }
      results += "{\"config\":" + config_json +
                 ",\"y\":" + obs::json_double(r.value) + "}";
    }
    results += ']';
    s.evals_done += configs.size();

    const auto t1 = Clock::now();
    expect_ok(client.rpc("{\"verb\":\"observe\",\"session\":\"" + s.name +
                         "\",\"results\":" + results + "}"));
    stats.observe_ns.push_back(elapsed_ns(t1, Clock::now()));

    if (s.evals_done >= opt.evals) {
      expect_ok(client.rpc("{\"verb\":\"close\",\"session\":\"" + s.name +
                           "\"}"));
      s.active = false;
      --active;
      ++stats.sessions_completed;
    }
  }
}

// ---------------------------------------------------------------------------
// Chaos phase: out-of-process daemon, SIGKILL mid-storm, restart, verify.

/// The daemon half of --chaos: exactly what `hiperbot serve` does, hosted
/// by this binary so the bench needs no second executable. Runs until
/// SIGTERM (clean shutdown) — or SIGKILL, which is the point.
std::atomic<bool> g_serve_child_stop{false};
static_assert(std::atomic<bool>::is_always_lock_free);

void serve_child_signal(int) {
  g_serve_child_stop.store(true, std::memory_order_relaxed);
}

int run_serve_child(const std::string& socket_path,
                    const std::string& session_dir) {
  std::signal(SIGTERM, serve_child_signal);
  std::signal(SIGINT, serve_child_signal);
  core::SessionManagerConfig mconfig;
  mconfig.journal_dir = session_dir;
  core::SessionManager manager(service::dataset_session_factory(),
                               std::move(mconfig));
  service::WireService wire(manager);
  service::LineServer server(
      [&wire](std::string_view line) { return wire.handle_line(line); },
      {.unix_path = socket_path, .stop_flag = &g_serve_child_stop});
  server.serve();
  server.stop();
  return 0;
}

int spawn_daemon(const Options& opt, const std::string& socket_path,
                 const std::string& session_dir) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    die("fork: " + std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    ::execl(opt.self.c_str(), opt.self.c_str(), "--serve-child", "--socket",
            socket_path.c_str(), "--session-dir", session_dir.c_str(),
            static_cast<char*>(nullptr));
    // exec failed; nothing below the fork is safe except leaving.
    ::_exit(127);
  }
  g_child_pid.store(pid, std::memory_order_relaxed);
  return pid;
}

void kill_daemon(int pid, int signum) {
  ::kill(pid, signum);
  ::waitpid(pid, nullptr, 0);
  g_child_pid.store(0, std::memory_order_relaxed);
}

/// Poll the `health` verb until the daemon answers; returns ms from call
/// to first healthy response — the kill→serving recovery latency when
/// called right after a restart exec.
double wait_healthy(const std::string& socket_path, std::uint64_t* adopted,
                    int timeout_ms = 30000) {
  const auto t0 = Clock::now();
  while (true) {
    LineClient probe(socket_path, /*fatal=*/false);
    if (probe.connected()) {
      const std::string response = probe.rpc("{\"verb\":\"health\"}");
      if (!response.empty()) {
        const service::JsonValue v = expect_ok(response);
        if (adopted != nullptr) {
          *adopted = static_cast<std::uint64_t>(
              v.find("health")->find("adopted")->as_number());
        }
        return static_cast<double>(elapsed_ns(t0, Clock::now())) * 1e-6;
      }
    }
    if (static_cast<double>(elapsed_ns(t0, Clock::now())) * 1e-6 >
        static_cast<double>(timeout_ms)) {
      die("daemon did not become healthy within " +
          std::to_string(timeout_ms) + "ms");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

struct ChaosStats {
  double recovery_ms = 0.0;
  std::uint64_t adopted_after_restart = 0;
  std::size_t resuggested_rounds = 0;
  std::size_t rounds = 0;
};

/// Per-session suggest sequences: seq[name][round] is the canonical JSON
/// of that round's configs. Bitwise equality of these across the reference
/// and chaos passes is the survivability verdict.
using SuggestSequences = std::map<std::string, std::vector<std::string>>;

/// Drive `sessions` interleaved sync sessions against an out-of-process
/// daemon. kill_after_suggests > 0 SIGKILLs the daemon once that many
/// suggests have been answered — with a window of unobserved rounds in
/// flight — restarts it on the same session dir, resyncs every session
/// from `status`, and finishes the workload.
SuggestSequences run_chaos_pass(const Options& opt,
                                const std::string& socket_path,
                                const std::string& session_dir,
                                tabular::TabularObjective& dataset,
                                std::size_t sessions, std::size_t evals,
                                std::size_t batch,
                                std::size_t kill_after_suggests,
                                ChaosStats* stats) {
  spawn_daemon(opt, socket_path, session_dir);
  wait_healthy(socket_path, nullptr);
  auto client = std::make_unique<LineClient>(socket_path);

  struct ChaosSlot {
    std::string name;
    std::size_t seed = 0;
    std::size_t evals_done = 0;
    bool created = false;
    bool pending = false;  // a suggested round awaits its observe
    std::vector<std::vector<double>> round_configs;
    bool finished = false;
  };
  std::vector<ChaosSlot> slots(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    slots[i].name = "c" + std::to_string(i);
    slots[i].seed = 1000 + i;
  }
  SuggestSequences seq;
  std::size_t suggests_done = 0;
  bool killed = kill_after_suggests == 0;
  std::size_t unfinished = sessions;

  const std::string create_suffix =
      std::string("\",\"dataset\":\"") + opt.dataset + "\",\"method\":\"" +
      opt.method + "\",\"batch_size\":" + std::to_string(batch) +
      ",\"max_evaluations\":" + std::to_string(evals) + ",\"seed\":";

  const auto record_round = [&](ChaosSlot& s,
                                const std::vector<std::vector<double>>& cfgs) {
    std::string rendered;
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      rendered += (i > 0 ? ";" : "") + config_json(cfgs[i]);
    }
    const std::size_t round = s.evals_done / batch;
    std::vector<std::string>& rounds = seq[s.name];
    if (round < rounds.size()) {
      // This round was already suggested before the kill; the resumed
      // daemon replayed the journal and must re-mint it bit for bit.
      if (rounds[round] != rendered) {
        die("resumed suggest for " + s.name + " round " +
            std::to_string(round) + " diverged:\n  before: " + rounds[round] +
            "\n  after:  " + rendered);
      }
      if (stats != nullptr) {
        ++stats->resuggested_rounds;
      }
    } else {
      rounds.push_back(rendered);
    }
  };

  const auto chaos_restart = [&]() {
    // SIGKILL: no destructors, no finalize records, fsync'd journals only
    // — the crash the journal exists for.
    kill_daemon(g_child_pid.load(std::memory_order_relaxed), SIGKILL);
    const auto t0 = Clock::now();
    spawn_daemon(opt, socket_path, session_dir);
    std::uint64_t adopted = 0;
    const double recovery_ms = wait_healthy(socket_path, &adopted);
    if (stats != nullptr) {
      stats->recovery_ms =
          static_cast<double>(elapsed_ns(t0, Clock::now())) * 1e-6;
      stats->adopted_after_restart = adopted;
      (void)recovery_ms;  // included in the spawn-to-healthy span above
    }
    client = std::make_unique<LineClient>(socket_path);
    // Resync every session from the restarted daemon's durable state: the
    // journal knows how many observations survived; unobserved rounds
    // were dropped and will be re-suggested.
    for (ChaosSlot& s : slots) {
      if (s.finished) {
        continue;
      }
      s.pending = false;
      s.round_configs.clear();
      const std::string response =
          client->rpc("{\"verb\":\"status\",\"session\":\"" + s.name + "\"}");
      const service::JsonValue v = service::parse_json(response);
      const service::JsonValue* ok = v.find("ok");
      if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
        s.created = true;
        s.evals_done = static_cast<std::size_t>(
            v.find("status")->find("evaluations")->as_number());
      } else {
        // Never created (the kill beat its create verb): start over.
        s.created = false;
        s.evals_done = 0;
      }
      std::vector<std::string>& rounds = seq[s.name];
      // Client-side record beyond the durable prefix belongs to rounds
      // the crash erased; keep them — the resumed daemon must re-mint
      // them identically (checked in record_round).
      (void)rounds;
    }
  };

  std::size_t cursor = 0;
  while (unfinished > 0) {
    ChaosSlot& s = slots[cursor % sessions];
    ++cursor;
    if (s.finished) {
      continue;
    }
    if (!s.created) {
      const std::string response =
          client->rpc("{\"verb\":\"create\",\"session\":\"" + s.name +
                      create_suffix + std::to_string(s.seed) + "}");
      const service::JsonValue v = service::parse_json(response);
      const service::JsonValue* ok = v.find("ok");
      if (ok == nullptr || !ok->is_bool() ||
          (!ok->as_bool() &&
           response.find("already exists") == std::string::npos)) {
        die("create failed: " + response);
      }
      // "already exists on disk (cold)" after a restart is adoption, not
      // failure: the journal survived the kill and the next verb resumes
      // it.
      s.created = true;
      continue;
    }
    if (!s.pending) {
      const service::JsonValue suggest = expect_ok(client->rpc(
          "{\"verb\":\"suggest\",\"session\":\"" + s.name + "\"}"));
      s.round_configs = parse_configs(suggest);
      record_round(s, s.round_configs);
      s.pending = true;
      ++suggests_done;
      if (!killed && suggests_done >= kill_after_suggests) {
        killed = true;
        chaos_restart();
      }
      continue;
    }
    std::string results = "[";
    for (std::size_t i = 0; i < s.round_configs.size(); ++i) {
      if (i > 0) {
        results += ',';
      }
      results += "{\"config\":" + config_json(s.round_configs[i]) +
                 ",\"y\":" +
                 obs::json_double(
                     evaluate_values(dataset, s.round_configs[i])) +
                 "}";
    }
    results += ']';
    const service::JsonValue observed = expect_ok(
        client->rpc("{\"verb\":\"observe\",\"session\":\"" + s.name +
                    "\",\"results\":" + results + "}"));
    s.evals_done = static_cast<std::size_t>(
        observed.find("status")->find("evaluations")->as_number());
    s.pending = false;
    if (s.evals_done >= evals) {
      expect_ok(client->rpc("{\"verb\":\"close\",\"session\":\"" + s.name +
                            "\"}"));
      s.finished = true;
      --unfinished;
    }
  }
  if (stats != nullptr) {
    for (const auto& [name, rounds] : seq) {
      stats->rounds += rounds.size();
    }
  }
  client.reset();
  kill_daemon(g_child_pid.load(std::memory_order_relaxed), SIGTERM);
  return seq;
}

ChaosStats run_chaos(const Options& opt, const std::string& temp_dir,
                     tabular::TabularObjective& dataset) {
  const std::size_t sessions = opt.smoke ? 8 : 32;
  const std::size_t evals = opt.smoke ? 4 : 6;
  const std::size_t batch = 2;
  const std::size_t total_suggests = sessions * (evals / batch);
  // Kill mid-stream: past the create wave, well short of done, with a
  // full window of unobserved rounds in flight.
  const std::size_t kill_after = std::max<std::size_t>(1, total_suggests / 2);

  const std::string socket_path = temp_dir + "/chaos.sock";
  register_socket_path(1, socket_path);
  std::printf(
      "  chaos          %zu sessions x %zu evals, SIGKILL after %zu/%zu "
      "suggests\n",
      sessions, evals, kill_after, total_suggests);

  const std::string ref_dir = temp_dir + "/chaos_ref.sessions";
  const SuggestSequences reference = run_chaos_pass(
      opt, socket_path, ref_dir, dataset, sessions, evals, batch,
      /*kill_after_suggests=*/0, nullptr);

  ChaosStats stats;
  const std::string chaos_dir = temp_dir + "/chaos_kill.sessions";
  const SuggestSequences survived = run_chaos_pass(
      opt, socket_path, chaos_dir, dataset, sessions, evals, batch,
      kill_after, &stats);

  if (survived != reference) {
    die("chaos pass diverged from the reference suggest sequences");
  }
  if (stats.resuggested_rounds == 0) {
    die("chaos kill landed with no unobserved rounds in flight; the "
        "resume path was not exercised");
  }
  std::printf(
      "    survived     recovery %.1fms, %llu sessions adopted, %zu/%zu "
      "rounds re-suggested bitwise-equal\n",
      stats.recovery_ms,
      static_cast<unsigned long long>(stats.adopted_after_restart),
      stats.resuggested_rounds, stats.rounds);
  return stats;
}

int run(Options opt) {
  if (opt.smoke) {
    opt.sessions = 60;
    opt.workers = 2;
    opt.window = 8;
    opt.evals = 4;
    opt.max_resident = 8;
    opt.compare_evals = 40;
  }
  std::signal(SIGINT, storm_signal_handler);
  std::signal(SIGTERM, storm_signal_handler);
  // Every run artifact lives under one private temp dir: no stray sockets
  // or journal trees in the working directory, one remove_all to clean up.
  const std::string temp_dir = make_temp_dir();
  const std::string session_dir = temp_dir + "/storm.sessions";
  const std::string socket_path = temp_dir + "/storm.sock";
  register_socket_path(0, socket_path);

  core::SessionManagerConfig mconfig;
  mconfig.journal_dir = session_dir;
  mconfig.max_resident = opt.max_resident;
  core::SessionManager manager(service::dataset_session_factory(),
                               std::move(mconfig));
  service::WireService wire(manager);
  service::LineServer server(
      [&wire](std::string_view line) { return wire.handle_line(line); },
      {.unix_path = socket_path});
  server.start();

  // The client-side copy of the dataset (the service's factory builds its
  // own; values are identical by construction). Tabular evaluation is a
  // read-only lookup, safe to share across worker threads.
  tabular::TabularObjective dataset = apps::dataset_by_name(opt.dataset).make();

  std::printf(
      "service_storm: %zu sessions x %zu evals (batch %zu, method %s), "
      "%zu workers x window %zu, max_resident %zu\n",
      opt.sessions, opt.evals, opt.batch, opt.method.c_str(), opt.workers,
      opt.window, opt.max_resident);

  std::atomic<std::size_t> next_session{0};
  std::vector<WorkerStats> stats(opt.workers);
  std::vector<std::thread> workers;
  workers.reserve(opt.workers);
  const auto t0 = Clock::now();
  for (std::size_t w = 0; w < opt.workers; ++w) {
    workers.emplace_back([&, w] {
      run_worker(opt, socket_path, dataset, next_session, stats[w]);
    });
  }
  for (std::thread& t : workers) {
    t.join();
  }
  const double wall_s = static_cast<double>(elapsed_ns(t0, Clock::now())) * 1e-9;

  std::vector<std::uint64_t> suggest_ns;
  std::vector<std::uint64_t> observe_ns;
  std::size_t completed = 0;
  for (WorkerStats& s : stats) {
    suggest_ns.insert(suggest_ns.end(), s.suggest_ns.begin(),
                      s.suggest_ns.end());
    observe_ns.insert(observe_ns.end(), s.observe_ns.begin(),
                      s.observe_ns.end());
    completed += s.sessions_completed;
  }
  if (completed != opt.sessions) {
    die("completed " + std::to_string(completed) + " of " +
        std::to_string(opt.sessions) + " sessions");
  }
  if (manager.resident_count() != 0) {
    die("expected every session closed, " +
        std::to_string(manager.resident_count()) + " still resident");
  }
  const Percentiles suggest = summarize(suggest_ns);
  const Percentiles observe = summarize(observe_ns);
  const double sessions_per_sec =
      static_cast<double>(completed) / std::max(wall_s, 1e-9);

  std::printf("  wall time      %.2fs (%.0f sessions/s, %.0f suggests/s)\n",
              wall_s, sessions_per_sec,
              static_cast<double>(suggest.count) / std::max(wall_s, 1e-9));
  std::printf("  suggest        p50 %.3fms  p99 %.3fms  mean %.3fms  (n=%zu)\n",
              suggest.p50_ms, suggest.p99_ms, suggest.mean_ms, suggest.count);
  std::printf("  observe        p50 %.3fms  p99 %.3fms  mean %.3fms  (n=%zu)\n",
              observe.p50_ms, observe.p99_ms, observe.mean_ms, observe.count);
  std::printf("  manager        %llu created, %llu evicted, %llu resumed, "
              "%llu closed\n",
              static_cast<unsigned long long>(manager.created_count()),
              static_cast<unsigned long long>(manager.evicted_count()),
              static_cast<unsigned long long>(manager.resumed_count()),
              static_cast<unsigned long long>(manager.closed_count()));

  // Interleaved windows larger than the residency cap must actually have
  // exercised the eviction/resume path — a silent zero here would mean the
  // bench measured nothing but the hot path.
  if (opt.max_resident < opt.workers * opt.window &&
      (manager.evicted_count() == 0 || manager.resumed_count() == 0)) {
    die("eviction/resume path was not exercised (evicted=" +
        std::to_string(manager.evicted_count()) + ", resumed=" +
        std::to_string(manager.resumed_count()) + ")");
  }

  // Straggler-skewed throughput: the same service, one client per mode.
  // Sync pays max(delay) per round; async pays each delay once, overlapped
  // across the token window, and should clearly win.
  const std::size_t cmp_evals = opt.compare_evals;
  const std::size_t cmp_batch = std::max<std::size_t>(4, opt.batch);
  const double sync_wall_s =
      run_compare_sync(socket_path, dataset, opt, cmp_evals, cmp_batch);
  const double async_wall_s =
      run_compare_async(socket_path, dataset, opt, cmp_evals, cmp_batch);
  const double sync_eps =
      static_cast<double>(cmp_evals) / std::max(sync_wall_s, 1e-9);
  const double async_eps =
      static_cast<double>(cmp_evals) / std::max(async_wall_s, 1e-9);
  const double speedup = async_eps / std::max(sync_eps, 1e-9);
  std::printf(
      "  async-vs-sync  %zu evals, window %zu, %.0f%% stragglers "
      "(%.1fms vs %.1fms)\n",
      cmp_evals, cmp_batch, 100.0 / static_cast<double>(kStragglerOneIn),
      kStragglerEvalMs, kShortEvalMs);
  std::printf("    sync         %.2fs (%.0f evals/s)\n", sync_wall_s,
              sync_eps);
  std::printf("    async        %.2fs (%.0f evals/s, %.2fx)\n", async_wall_s,
              async_eps, speedup);
  if (!opt.smoke && speedup <= 1.0) {
    die("async mode did not beat sync batch throughput (speedup " +
        std::to_string(speedup) + "x)");
  }
  server.stop();

  // Survivability proof, against an out-of-process daemon (the in-process
  // one above is stopped; its worker threads are joined, so the fork+exec
  // below starts from a quiet process).
  ChaosStats chaos;
  if (opt.chaos) {
    chaos = run_chaos(opt, temp_dir, dataset);
  }

  std::string json = "{\n  \"bench\": \"service_storm\",\n";
  json += "  \"sessions\": " + std::to_string(opt.sessions) + ",\n";
  json += "  \"workers\": " + std::to_string(opt.workers) + ",\n";
  json += "  \"window\": " + std::to_string(opt.window) + ",\n";
  json += "  \"evals_per_session\": " + std::to_string(opt.evals) + ",\n";
  json += "  \"batch_size\": " + std::to_string(opt.batch) + ",\n";
  json += "  \"max_resident\": " + std::to_string(opt.max_resident) + ",\n";
  json += "  \"method\": \"" + opt.method + "\",\n";
  json += "  \"dataset\": \"" + opt.dataset + "\",\n";
  json += "  \"wall_seconds\": " + obs::json_double(wall_s) + ",\n";
  json += "  \"sessions_per_sec\": " + obs::json_double(sessions_per_sec) +
          ",\n";
  const auto verb_json = [](const char* name, const Percentiles& p) {
    return std::string("  \"") + name + "\": {\"p50_ms\": " +
           obs::json_double(p.p50_ms) + ", \"p99_ms\": " +
           obs::json_double(p.p99_ms) + ", \"mean_ms\": " +
           obs::json_double(p.mean_ms) + ", \"count\": " +
           std::to_string(p.count) + "}";
  };
  json += verb_json("suggest", suggest) + ",\n";
  json += verb_json("observe", observe) + ",\n";
  json += "  \"async_compare\": {\"evals\": " + std::to_string(cmp_evals) +
          ", \"window\": " + std::to_string(cmp_batch) +
          ", \"straggler_rate\": " +
          obs::json_double(1.0 / static_cast<double>(kStragglerOneIn)) +
          ", \"short_ms\": " + obs::json_double(kShortEvalMs) +
          ", \"straggler_ms\": " + obs::json_double(kStragglerEvalMs) +
          ",\n    \"sync\": {\"wall_seconds\": " +
          obs::json_double(sync_wall_s) + ", \"evals_per_sec\": " +
          obs::json_double(sync_eps) +
          "},\n    \"async\": {\"wall_seconds\": " +
          obs::json_double(async_wall_s) + ", \"evals_per_sec\": " +
          obs::json_double(async_eps) + "},\n    \"speedup\": " +
          obs::json_double(speedup) + "},\n";
  if (opt.chaos) {
    json += "  \"chaos\": {\"recovery_ms\": " +
            obs::json_double(chaos.recovery_ms) +
            ", \"adopted_after_restart\": " +
            std::to_string(chaos.adopted_after_restart) +
            ", \"resuggested_rounds\": " +
            std::to_string(chaos.resuggested_rounds) + ", \"rounds\": " +
            std::to_string(chaos.rounds) + ", \"bitwise_equal\": true},\n";
  }
  json += "  \"evicted\": " + std::to_string(manager.evicted_count()) + ",\n";
  json += "  \"resumed\": " + std::to_string(manager.resumed_count()) + ",\n";
  json += "  \"connections\": " +
          std::to_string(server.connections_accepted()) + "\n}\n";
  std::FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f == nullptr) {
    die("cannot write " + opt.out);
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("  wrote %s\n", opt.out.c_str());

  // The journals are run artifacts, not results: a clean exit leaves only
  // the JSON report behind.
  remove_run_artifacts();
  return 0;
}

}  // namespace
}  // namespace hpb

int main(int argc, char** argv) {
  hpb::Options opt;
  opt.self = argc > 0 ? argv[0] : "service_storm";
  bool serve_child = false;
  std::string child_socket;
  std::string child_session_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "service_storm: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--smoke") {
      opt.smoke = true;
    } else if (arg == "--chaos") {
      opt.chaos = true;
    } else if (arg == "--serve-child") {
      serve_child = true;
    } else if (arg == "--socket") {
      child_socket = next();
    } else if (arg == "--session-dir") {
      child_session_dir = next();
    } else if (arg == "--sessions") {
      opt.sessions = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--workers") {
      opt.workers = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--window") {
      opt.window = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--evals") {
      opt.evals = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--batch") {
      opt.batch = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--max-resident") {
      opt.max_resident = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--method") {
      opt.method = next();
    } else if (arg == "--dataset") {
      opt.dataset = next();
    } else if (arg == "--out") {
      opt.out = next();
    } else {
      std::fprintf(stderr,
                   "usage: service_storm [--smoke] [--chaos] [--sessions N] "
                   "[--workers N] [--window N] [--evals N] [--batch N] "
                   "[--max-resident N] [--method NAME] [--dataset NAME] "
                   "[--out PATH]\n");
      return 2;
    }
  }
  if (serve_child) {
    if (child_socket.empty() || child_session_dir.empty()) {
      std::fprintf(stderr,
                   "service_storm: --serve-child needs --socket and "
                   "--session-dir\n");
      return 2;
    }
    return hpb::run_serve_child(child_socket, child_session_dir);
  }
  if (opt.sessions == 0 || opt.workers == 0 || opt.window == 0 ||
      opt.evals == 0 || opt.batch == 0) {
    std::fprintf(stderr, "service_storm: all sizes must be positive\n");
    return 2;
  }
  return hpb::run(opt);
}
