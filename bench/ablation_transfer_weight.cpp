// Ablation: the transfer-prior weight w (eq. 9–10) and the source→target
// correlation ρ. Sweeps both knobs on the Kripke transfer pair and reports
// Recall R(10%) of the selected set — showing when a source prior helps
// (correlated source, moderate w) and when it hurts (uncorrelated source,
// large w: negative transfer).
#include <fstream>
#include <iomanip>
#include <iostream>

#include "apps/transfer.hpp"
#include "core/engine.hpp"
#include "core/hiperbot.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "figure_common.hpp"
#include "stats/summary.hpp"

namespace {

hpb::stats::RunningStats run_with_weight(hpb::apps::TransferPair& pair,
                                         double weight, std::size_t budget,
                                         std::size_t reps) {
  hpb::stats::RunningStats out;
  const auto pool =
      std::make_shared<const std::vector<hpb::space::Configuration>>(
          pair.target.configs().begin(), pair.target.configs().end());
  hpb::Rng seeder(0xAB7E);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    hpb::core::HiPerBOtConfig config;
    config.transfer_weight = weight;
    hpb::core::HiPerBOt tuner(pair.target.space_ptr(), config,
                              seeder.next_u64(), pool);
    if (weight > 0.0) {
      tuner.set_transfer_prior(hpb::core::make_transfer_prior(
          pair.source.space_ptr(), pair.source.configs(),
          pair.source.values(), config.quantile));
    }
    const hpb::core::TuningEngine engine(
        {.batch_size = hpb::eval::batch_from_env(1)});
    const auto result = engine.run(tuner, pair.target, budget);
    out.add(hpb::eval::recall_tolerance(pair.target, result.history, budget,
                                        0.10));
  }
  return out;
}

}  // namespace

int main() {
  const std::size_t reps = hpb::eval::reps_from_env(3);
  std::ofstream csv(hpb::benchfig::csv_path("ablation_transfer_weight"));
  csv << "correlation,weight,recall_mean,recall_std\n";

  const std::vector<double> correlations = {0.0, 0.5, 0.9, 1.0};
  const std::vector<double> weights = {0.0, 0.5, 2.0, 8.0};
  constexpr std::size_t kBudget = 200;

  std::cout << "Ablation: transfer prior weight w (rows) x source "
               "correlation rho (cols)\n"
            << "metric: Recall R(10%) on the Kripke transfer target, budget "
            << kBudget << ", reps " << reps << "\n\n";
  std::cout << std::left << std::setw(10) << "w \\ rho";
  for (double rho : correlations) {
    std::cout << std::setw(18) << rho;
  }
  std::cout << '\n';

  // Build one pair per correlation (the target surface depends on rho).
  std::vector<hpb::apps::TransferPair> pairs;
  pairs.reserve(correlations.size());
  for (double rho : correlations) {
    pairs.push_back(hpb::apps::make_kripke_transfer(rho));
  }

  for (double w : weights) {
    std::cout << std::left << std::setw(10) << w;
    for (std::size_t i = 0; i < correlations.size(); ++i) {
      const auto stats = run_with_weight(pairs[i], w, kBudget, reps);
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(3) << stats.mean() << " ± "
           << stats.stddev();
      std::cout << std::setw(18) << cell.str();
      csv << correlations[i] << ',' << w << ',' << stats.mean() << ','
          << stats.stddev() << '\n';
    }
    std::cout << '\n';
  }
  std::cout << "\nwrote " << hpb::benchfig::csv_path("ablation_transfer_weight")
            << '\n';
  return 0;
}
