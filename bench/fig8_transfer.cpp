// Figure 8: transfer learning — HiPerBOt (source-domain densities as
// priors, eq. 9–10) vs PerfNet (deep-regression ranker) on the Kripke and
// HYPRE source→target pairs. Recall R(γ) (eq. 12) at tolerance thresholds
// γ ∈ {5, 10, 15, 20}%, with the "number of good cases" annotated per
// threshold as in the paper's x-axis.
//
// Budget protocol follows §VII: each method touches 1% of the target
// configurations plus 100 more.
#include <fstream>
#include <iomanip>
#include <iostream>

#include "apps/transfer.hpp"
#include "baselines/perfnet.hpp"
#include "core/engine.hpp"
#include "core/hiperbot.hpp"
#include "eval/experiment.hpp"
#include "eval/metrics.hpp"
#include "figure_common.hpp"
#include "stats/summary.hpp"

namespace {

using hpb::apps::TransferPair;

constexpr double kGammas[] = {0.05, 0.10, 0.15, 0.20};

struct TransferResult {
  hpb::stats::RunningStats recall[4];
};

TransferResult run_hiperbot(TransferPair& pair, std::size_t budget,
                            std::size_t reps) {
  TransferResult out;
  const auto pool =
      std::make_shared<const std::vector<hpb::space::Configuration>>(
          pair.target.configs().begin(), pair.target.configs().end());
  // Prior densities from the full (cheap) source dataset.
  hpb::Rng seeder(0xF188);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    hpb::core::HiPerBOtConfig config;
    config.transfer_weight = 2.0;
    hpb::core::HiPerBOt tuner(pair.target.space_ptr(), config,
                              seeder.next_u64(), pool);
    tuner.set_transfer_prior(hpb::core::make_transfer_prior(
        pair.source.space_ptr(), pair.source.configs(), pair.source.values(),
        config.quantile));
    const hpb::core::TuningEngine engine(
        {.batch_size = hpb::eval::batch_from_env(1)});
    const auto result = engine.run(tuner, pair.target, budget);
    for (int g = 0; g < 4; ++g) {
      out.recall[g].add(hpb::eval::recall_tolerance(pair.target,
                                                    result.history, budget,
                                                    kGammas[g]));
    }
  }
  return out;
}

TransferResult run_perfnet(const TransferPair& pair, std::size_t budget,
                           std::size_t reps) {
  TransferResult out;
  hpb::Rng seeder(0xF189);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    hpb::baselines::PerfNet net({}, seeder.next_u64());
    net.train(pair.source, pair.target, budget);
    const auto selection = net.selection();
    for (int g = 0; g < 4; ++g) {
      out.recall[g].add(hpb::eval::recall_tolerance_indices(
          pair.target, selection, kGammas[g]));
    }
  }
  return out;
}

void report(std::ostream& csv, const std::string& name,
            TransferPair& pair, std::size_t reps) {
  const std::size_t budget = pair.target.size() / 100 + 100;  // 1% + 100
  std::cout << "== " << name << " ==\n"
            << "source " << pair.source.size() << " configs, target "
            << pair.target.size() << " configs, budget " << budget
            << " target samples, reps " << reps << '\n';
  std::cout << std::left << std::setw(12) << "threshold";
  for (double g : kGammas) {
    std::ostringstream head;
    head << static_cast<int>(g * 100) << "% ("
         << hpb::eval::good_case_count(pair.target, g) << " good)";
    std::cout << std::setw(18) << head.str();
  }
  std::cout << '\n';

  const TransferResult perfnet = run_perfnet(pair, budget, reps);
  const TransferResult hiperbot = run_hiperbot(pair, budget, reps);
  auto row = [&](const char* method, const TransferResult& r) {
    std::cout << std::left << std::setw(12) << method;
    for (int g = 0; g < 4; ++g) {
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(3) << r.recall[g].mean()
           << " ± " << r.recall[g].stddev();
      std::cout << std::setw(18) << cell.str();
      csv << name << ',' << method << ',' << kGammas[g] << ','
          << hpb::eval::good_case_count(pair.target, kGammas[g]) << ','
          << r.recall[g].mean() << ',' << r.recall[g].stddev() << '\n';
    }
    std::cout << '\n';
  };
  row("PerfNet", perfnet);
  row("HiPerBOt", hiperbot);
  std::cout << '\n';
}

}  // namespace

int main() {
  const std::size_t reps = hpb::eval::reps_from_env(3);
  std::ofstream csv(hpb::benchfig::csv_path("fig8_transfer"));
  csv << "dataset,method,gamma,good_cases,recall_mean,recall_std\n";

  std::cout << "Figure 8: transfer learning, Recall R(gamma) vs tolerance\n\n";
  {
    TransferPair kripke = hpb::apps::make_kripke_transfer();
    report(csv, "Kripke (16 -> 64 nodes)", kripke, reps);
  }
  {
    TransferPair hypre = hpb::apps::make_hypre_transfer();
    report(csv, "HYPRE (16 -> 64 nodes)", hypre, reps);
  }
  std::cout << "wrote " << hpb::benchfig::csv_path("fig8_transfer") << '\n';
  return 0;
}
