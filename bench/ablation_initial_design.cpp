// Ablation: uniform-random vs Latin-hypercube initial designs (§III-C
// step 1 uses uniform sampling; LHS is the standard space-filling
// alternative). Reports best-found and recall on every dataset at the
// paper's default budget.
#include <fstream>
#include <iostream>

#include "apps/registry.hpp"
#include "core/hiperbot.hpp"
#include "eval/experiment.hpp"
#include "eval/report.hpp"
#include "figure_common.hpp"

int main() {
  const std::size_t reps = hpb::eval::reps_from_env(10);
  std::ofstream csv(hpb::benchfig::csv_path("ablation_initial_design"));
  csv << "dataset,design,metric,sample_size,mean,std\n";

  std::cout << "Ablation: uniform vs Latin-hypercube initial design (reps "
            << reps << ")\n\n";
  for (const auto& info : hpb::apps::dataset_registry()) {
    auto dataset = info.make();
    hpb::eval::SelectionExperimentConfig config;
    config.sample_sizes = {50, 100, 150};
    config.reps = reps;
    config.seed = 0xAB1D;

    const auto pool =
        std::make_shared<const std::vector<hpb::space::Configuration>>(
            dataset.configs().begin(), dataset.configs().end());
    auto factory = [&](hpb::core::InitialDesign design) {
      return [&, design](std::uint64_t seed) {
        hpb::core::HiPerBOtConfig hc;
        hc.initial_design = design;
        return std::make_unique<hpb::core::HiPerBOt>(dataset.space_ptr(), hc,
                                                     seed, pool);
      };
    };

    std::vector<hpb::eval::MethodCurve> curves;
    curves.push_back(hpb::eval::run_selection_experiment(
        dataset, "Uniform", factory(hpb::core::InitialDesign::kUniform),
        config));
    curves.push_back(hpb::eval::run_selection_experiment(
        dataset, "LHS", factory(hpb::core::InitialDesign::kLatinHypercube),
        config));
    hpb::eval::print_curves(std::cout, info.name, curves, dataset.size(),
                            dataset.best_value(), /*show_recall=*/true);
    for (const auto& c : curves) {
      for (std::size_t k = 0; k < c.sample_sizes.size(); ++k) {
        csv << info.name << ',' << c.method << ",best," << c.sample_sizes[k]
            << ',' << c.best_value[k].mean() << ','
            << c.best_value[k].stddev() << '\n';
        csv << info.name << ',' << c.method << ",recall,"
            << c.sample_sizes[k] << ',' << c.recall[k].mean() << ','
            << c.recall[k].stddev() << '\n';
      }
    }
  }
  std::cout << "wrote " << hpb::benchfig::csv_path("ablation_initial_design")
            << '\n';
  return 0;
}
