// Figure 5: LULESH compiler flags — best configuration and Recall vs
// sample size {46, 146, 246, 346, 446} over the 11-flag space.
#include "apps/lulesh.hpp"
#include "figure_common.hpp"

int main() {
  auto dataset = hpb::apps::make_lulesh();
  hpb::benchfig::FigureSpec spec;
  spec.title = "Figure 5: LULESH compiler flags";
  spec.csv_name = "fig5_lulesh";
  spec.sample_sizes = {46, 146, 246, 346, 446};
  spec.recall_percentile = 5.0;
  spec.reference_value = 6.02;
  spec.reference_label = "-O3 default flags";
  return hpb::benchfig::run_selection_figure(dataset, spec);
}
