// Figure 3: Kripke energy study under power capping — best configuration
// and Recall vs sample size {39, 139, 239, 339, 439} on the ~18k-config
// power-capped space. The paper notes >800 configurations fall within the
// goodness threshold here (hence the low recall ceiling); ℓ is chosen to
// match that population.
#include "apps/kripke.hpp"
#include "figure_common.hpp"

int main() {
  auto dataset = hpb::apps::make_kripke_energy();
  hpb::benchfig::FigureSpec spec;
  spec.title = "Figure 3: Kripke energy (power capping)";
  spec.csv_name = "fig3_kripke_energy";
  spec.sample_sizes = {39, 139, 239, 339, 439};
  spec.recall_percentile = 4.5;  // ~800 of ~18k configs counted "good"
  spec.reference_value = 4742.0;
  spec.reference_label = "expert 2nd-highest power level";
  return hpb::benchfig::run_selection_figure(dataset, spec);
}
