// Quickstart: tune a custom objective with HiPerBOt in ~40 lines.
//
// Defines a small mixed discrete/continuous objective (the toy setup of the
// paper's Fig. 1 plus a categorical "algorithm" switch), runs the Bayesian
// optimization loop, and prints the best configuration found.
//
// Build & run:  ./build/examples/quickstart
#include <cmath>
#include <iostream>

#include "core/hiperbot.hpp"
#include "core/loop.hpp"
#include "tabular/objective.hpp"

namespace {

// Any objective is a class with a parameter space and an evaluate() method.
// Here f(x, algo) = (x − 3)² scaled by a per-algorithm factor; the optimum
// is x = 3 with algo = "fast".
class ToyObjective final : public hpb::tabular::Objective {
 public:
  ToyObjective() {
    auto space = std::make_shared<hpb::space::ParameterSpace>();
    space->add(hpb::space::Parameter::continuous("x", 0.0, 5.0));
    space->add(
        hpb::space::Parameter::categorical("algo", {"slow", "fast", "naive"}));
    space_ = std::move(space);
  }

  const hpb::space::ParameterSpace& space() const override { return *space_; }
  hpb::space::SpacePtr space_ptr() const { return space_; }

  double evaluate(const hpb::space::Configuration& c) override {
    const double x = c[0];
    const double algo_factor = (c.level(1) == 1) ? 1.0 : 1.8;
    return algo_factor * ((x - 3.0) * (x - 3.0) + 0.5);
  }

  std::string name() const override { return "toy"; }

 private:
  hpb::space::SpacePtr space_;
};

}  // namespace

int main() {
  ToyObjective objective;

  // Continuous parameters require the Proposal selection strategy (§III-D):
  // candidates are sampled from the good-configuration density pg(x).
  hpb::core::HiPerBOtConfig config;
  config.initial_samples = 10;
  config.quantile = 0.2;
  config.strategy = hpb::core::SelectionStrategy::kProposal;
  config.proposal_candidates = 64;

  hpb::core::HiPerBOt tuner(objective.space_ptr(), config, /*seed=*/42);
  const hpb::core::TuneResult result =
      hpb::core::run_tuning(tuner, objective, /*budget=*/60);

  std::cout << "evaluations: " << result.history.size() << '\n'
            << "best value:  " << result.best_value << "  (true optimum 0.5)\n"
            << "best config: "
            << objective.space().to_string(result.best_config) << '\n';

  std::cout << "\nbest-so-far trajectory (every 10 evaluations):\n";
  for (std::size_t t = 9; t < result.best_so_far.size(); t += 10) {
    std::cout << "  after " << (t + 1) << " evals: " << result.best_so_far[t]
              << '\n';
  }
  return 0;
}
