// Batch tuning: on a cluster you rarely evaluate one configuration at a
// time — a job scheduler runs k of them concurrently. This example drives
// HiPerBOt's suggest_batch() API: each round asks for the surrogate's
// top-k un-evaluated configurations, evaluates the whole batch in parallel
// on a worker pool, then feeds all k results back before the next round.
//
// Build & run:  ./build/examples/batch_tuning
#include <iomanip>
#include <iostream>
#include <vector>

#include "apps/kripke.hpp"
#include "common/thread_pool.hpp"
#include "core/hiperbot.hpp"

int main() {
  auto dataset = hpb::apps::make_kripke_exec();
  std::cout << "batch tuning on the Kripke dataset (" << dataset.size()
            << " configurations, exhaustive best " << dataset.best_value()
            << " s)\n\n";

  constexpr std::size_t kBatch = 8;    // concurrent "jobs" per round
  constexpr std::size_t kRounds = 12;  // 12 x 8 = 96 evaluations total

  hpb::core::HiPerBOtConfig config;
  config.initial_samples = kBatch;  // first round is the random design
  hpb::core::HiPerBOt tuner(dataset.space_ptr(), config, 7);
  hpb::ThreadPool pool(4);

  double best = 0.0;
  bool have_best = false;
  for (std::size_t round = 0; round < kRounds; ++round) {
    const std::vector<hpb::space::Configuration> batch =
        tuner.suggest_batch(kBatch);

    // Evaluate the batch concurrently: slot i holds configuration i's
    // result, so the observe order (and thus the tuner state) is
    // deterministic no matter how the pool schedules the work.
    std::vector<double> results(batch.size());
    hpb::parallel_for_indexed(&pool, batch.size(), [&](std::size_t i) {
      results[i] = dataset.value_of(batch[i]);  // "run the job"
    });

    for (std::size_t i = 0; i < batch.size(); ++i) {
      tuner.observe(batch[i], results[i]);
      if (!have_best || results[i] < best) {
        best = results[i];
        have_best = true;
      }
    }
    std::cout << "round " << std::setw(2) << (round + 1) << ": batch of "
              << batch.size() << ", best so far " << std::fixed
              << std::setprecision(2) << best << " s\n";
  }

  std::cout << "\nfinal best: " << best << " s after " << kRounds * kBatch
            << " evaluations in " << kRounds
            << " scheduler rounds\n  config: "
            << dataset.space().to_string(tuner.history().best_config())
            << '\n';
  return 0;
}
