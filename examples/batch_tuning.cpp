// Batch tuning: on a cluster you rarely evaluate one configuration at a
// time — a job scheduler runs k of them concurrently. This example drives
// the batched TuningEngine: each round it asks the tuner for its top-k
// un-evaluated configurations (suggest_batch), evaluates the whole batch in
// parallel on a worker pool, then feeds all k results back in suggestion
// order (observe_batch) before the next round. With batch_size = 1 and no
// pool the engine reproduces the classic serial ask/tell loop bit for bit.
//
// Build & run:  ./build/examples/batch_tuning
#include <algorithm>
#include <iomanip>
#include <iostream>

#include "apps/kripke.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/hiperbot.hpp"

int main() {
  auto dataset = hpb::apps::make_kripke_exec();
  std::cout << "batch tuning on the Kripke dataset (" << dataset.size()
            << " configurations, exhaustive best " << dataset.best_value()
            << " s)\n\n";

  constexpr std::size_t kBatch = 8;     // concurrent "jobs" per round
  constexpr std::size_t kBudget = 96;   // 12 rounds of 8

  hpb::core::HiPerBOtConfig config;
  config.initial_samples = kBatch;  // first round is the random design
  hpb::core::HiPerBOt tuner(dataset.space_ptr(), config, 7);

  // The pool evaluates each round's batch concurrently; slot i of the
  // round holds configuration i's result, so the observe order (and thus
  // the tuner state) is deterministic no matter how the pool schedules
  // the work.
  hpb::ThreadPool pool(4);
  const hpb::core::TuningEngine engine(
      {.batch_size = kBatch, .pool = &pool});
  const hpb::core::TuneResult result = engine.run(tuner, dataset, kBudget);

  // best_so_far is per-evaluation; print it at round granularity.
  for (std::size_t round = 0; round * kBatch < kBudget; ++round) {
    const std::size_t last = std::min(kBudget, (round + 1) * kBatch) - 1;
    std::cout << "round " << std::setw(2) << (round + 1) << ": batch of "
              << kBatch << ", best so far " << std::fixed
              << std::setprecision(2) << result.best_so_far[last] << " s\n";
  }

  std::cout << "\nfinal best: " << result.best_value << " s after "
            << result.history.size() << " evaluations in "
            << (kBudget + kBatch - 1) / kBatch << " scheduler rounds\n"
            << "  config: " << dataset.space().to_string(result.best_config)
            << '\n';
  return 0;
}
