// Live tuning of a real kernel (not a frozen dataset): a 2-D Jacobi
// stencil whose cache blocking, unrolling, and thread count are tunable.
// Every evaluation actually runs the kernel and measures wall-clock time —
// the paper's primary use case, where each objective evaluation is an
// application run.
//
// Build & run:  ./build/examples/tune_stencil
#include <iomanip>
#include <iostream>

#include "apps/stencil.hpp"
#include "core/hiperbot.hpp"
#include "core/loop.hpp"

int main() {
  hpb::apps::StencilWorkload workload;
  workload.grid = 384;
  workload.sweeps = 12;
  workload.repeats = 2;
  hpb::apps::StencilObjective objective(workload);

  std::cout << "live stencil tuning: " << workload.grid << "x"
            << workload.grid << " grid, " << workload.sweeps
            << " Jacobi sweeps per evaluation\n"
            << "space: " << objective.space().cross_product_size()
            << " configurations ("
            << objective.space().param(0).num_levels() << " tile_i x "
            << objective.space().param(1).num_levels() << " tile_j x "
            << objective.space().param(2).num_levels() << " unroll x "
            << objective.space().param(3).num_levels() << " threads)\n\n";

  hpb::core::HiPerBOtConfig config;
  config.initial_samples = 8;
  hpb::core::HiPerBOt tuner(objective.space_ptr(), config, 2024);

  constexpr std::size_t kBudget = 30;
  double first_phase_best = 0.0;
  for (std::size_t t = 0; t < kBudget; ++t) {
    const auto c = tuner.suggest();
    const double seconds = objective.evaluate(c);
    tuner.observe(c, seconds);
    if (t + 1 == config.initial_samples) {
      first_phase_best = tuner.history().best_value();
    }
    std::cout << "  eval " << std::setw(2) << (t + 1) << ": " << std::fixed
              << std::setprecision(4) << seconds << " s   "
              << objective.space().to_string(c) << '\n';
  }

  const auto& history = tuner.history();
  std::cout << "\nbest after random phase (" << config.initial_samples
            << " evals): " << first_phase_best << " s\n"
            << "best after tuning (" << kBudget
            << " evals):      " << history.best_value() << " s\n"
            << "best configuration: "
            << objective.space().to_string(history.best_config()) << '\n'
            << "result checksum (identical for every config): "
            << objective.last_checksum() << '\n';
  return 0;
}
