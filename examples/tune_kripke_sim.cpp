// Compare HiPerBOt against GEIST and random search on the simulated Kripke
// execution-time dataset — the paper's headline experiment (§V-A) as a
// single narrated run instead of a replicated benchmark.
//
// Build & run:  ./build/examples/tune_kripke_sim
#include <iomanip>
#include <iostream>

#include "apps/kripke.hpp"
#include "core/loop.hpp"
#include "eval/methods.hpp"
#include "eval/metrics.hpp"

int main() {
  auto dataset = hpb::apps::make_kripke_exec();
  std::cout << "Kripke execution-time dataset: " << dataset.size()
            << " configurations\n"
            << "exhaustive best: " << dataset.best_value() << " s  ("
            << dataset.space().to_string(dataset.best_config()) << ")\n"
            << "expert manual choice (paper): 15.2 s\n\n";

  const auto methods = hpb::eval::make_standard_methods(dataset);
  constexpr std::size_t kBudget = 96;  // the paper's headline sample count

  struct Row {
    const char* name;
    const hpb::eval::TunerFactory* factory;
  };
  const Row rows[] = {{"Random", &methods.random},
                      {"GEIST", &methods.geist},
                      {"HiPerBOt", &methods.hiperbot}};

  std::cout << "tuning with a budget of " << kBudget << " evaluations ("
            << std::fixed << std::setprecision(1)
            << 100.0 * kBudget / static_cast<double>(dataset.size())
            << "% of the space):\n\n";
  for (const auto& row : rows) {
    auto tuner = (*row.factory)(/*seed=*/2020);
    const auto result = hpb::core::run_tuning(*tuner, dataset, kBudget);
    const double recall =
        hpb::eval::recall_percentile(dataset, result.history, kBudget, 5.0);
    std::cout << std::left << std::setw(10) << row.name
              << "  best found: " << std::setprecision(2) << result.best_value
              << " s   recall(top-5%): " << std::setprecision(3) << recall
              << "\n           best config: "
              << dataset.space().to_string(result.best_config) << "\n";
  }

  std::cout << "\nA run is 'successful' when it reaches the exhaustive best "
            << dataset.best_value() << " s — the paper reports HiPerBOt "
            << "doing so with 96 samples, half of what GEIST needs.\n";
  return 0;
}
