// Live tuning of the two miniature HPC applications — the paper's premise
// end-to-end, with the kernels actually running on this machine:
//
//   * MiniSweep: a Kripke-style SN transport sweep whose Nesting parameter
//     permutes the angular-flux memory layout (DGZ..ZGD) and loop order;
//   * MiniSolver: a HYPRE-style Poisson solver suite (Jacobi/GS/SOR/CG/
//     PCG/MG with relaxation weights).
//
// Build & run:  ./build/examples/tune_live_apps
#include <iomanip>
#include <iostream>

#include "apps/minisolver.hpp"
#include "apps/minisweep.hpp"
#include "core/hiperbot.hpp"
#include "core/loop.hpp"

namespace {

void tune(hpb::tabular::Objective& objective, hpb::space::SpacePtr space,
          std::size_t budget) {
  hpb::core::HiPerBOtConfig config;
  config.initial_samples = 8;
  hpb::core::HiPerBOt tuner(space, config, 2026);
  double random_phase_best = 0.0;
  for (std::size_t t = 0; t < budget; ++t) {
    const auto c = tuner.suggest();
    tuner.observe(c, objective.evaluate(c));
    if (t + 1 == config.initial_samples) {
      random_phase_best = tuner.history().best_value();
    }
  }
  const auto& history = tuner.history();
  std::cout << std::fixed << std::setprecision(4)
            << "  best after " << config.initial_samples
            << " random evals: " << random_phase_best << " s\n"
            << "  best after " << budget
            << " tuned evals:  " << history.best_value() << " s\n"
            << "  best configuration: "
            << space->to_string(history.best_config()) << "\n\n";
}

}  // namespace

int main() {
  {
    hpb::apps::MiniSweepWorkload workload;
    workload.zones = 32;
    workload.groups = 16;
    workload.directions = 8;
    workload.sweeps = 2;
    workload.repeats = 2;
    hpb::apps::MiniSweepObjective sweep(workload);
    std::cout << "MiniSweep (Kripke-style SN transport): " << workload.zones
              << "x" << workload.zones << " zones, " << workload.groups
              << " groups, " << workload.directions << " directions, "
              << sweep.space().cross_product_size()
              << " layout/blocking configurations\n";
    tune(sweep, sweep.space_ptr(), 24);
    std::cout << "  flux checksum (layout-independent): "
              << sweep.last_checksum() << "\n\n";
  }
  {
    hpb::apps::MiniSolverWorkload workload;
    workload.grid = 48;
    workload.tolerance = 1e-8;
    workload.max_iters = 3000;
    hpb::apps::MiniSolverObjective solver(workload);
    std::cout << "MiniSolver (HYPRE-style Poisson suite): " << workload.grid
              << "x" << workload.grid << " unknowns, "
              << solver.space().cross_product_size()
              << " solver/omega/sweeps configurations\n";
    tune(solver, solver.space_ptr(), 30);
    std::cout << "  final residual: " << std::scientific
              << solver.last_residual() << '\n';
  }
  return 0;
}
