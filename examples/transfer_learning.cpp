// Transfer learning (§III-E, §VII): tune a "64-node" Kripke target using
// densities learned from a fully-observed "16-node" source study as
// priors, and compare against tuning the target cold.
//
// Build & run:  ./build/examples/transfer_learning
#include <iostream>

#include "apps/transfer.hpp"
#include "core/hiperbot.hpp"
#include "core/loop.hpp"
#include "eval/metrics.hpp"

int main() {
  // ρ = 0.9: the small-scale study is representative but not identical.
  hpb::apps::TransferPair pair = hpb::apps::make_kripke_transfer(0.9);
  std::cout << "source (16 nodes): " << pair.source.size()
            << " configs, fully observed, best " << pair.source.best_value()
            << " s\n"
            << "target (64 nodes): " << pair.target.size()
            << " configs, best " << pair.target.best_value() << " s\n\n";

  constexpr std::size_t kBudget = 150;  // expensive 64-node runs we can afford
  const auto pool =
      std::make_shared<const std::vector<hpb::space::Configuration>>(
          pair.target.configs().begin(), pair.target.configs().end());

  auto run = [&](bool with_prior) {
    hpb::core::HiPerBOtConfig config;
    config.transfer_weight = 2.0;  // w of eq. 9-10
    hpb::core::HiPerBOt tuner(pair.target.space_ptr(), config, 7, pool);
    if (with_prior) {
      // The prior: good/bad densities estimated from ALL source runs.
      tuner.set_transfer_prior(hpb::core::make_transfer_prior(
          pair.source.space_ptr(), pair.source.configs(),
          pair.source.values(), config.quantile));
    }
    const auto result = hpb::core::run_tuning(tuner, pair.target, kBudget);
    const double recall = hpb::eval::recall_tolerance(
        pair.target, result.history, kBudget, 0.10);
    std::cout << (with_prior ? "with source prior:   " : "cold start:          ")
              << "best " << result.best_value << " s, recall(10% tol) "
              << recall << ", first hit of a good config at eval ";
    const double threshold = 1.10 * pair.target.best_value();
    std::size_t first_hit = kBudget;
    for (std::size_t t = 0; t < result.history.size(); ++t) {
      if (result.history[t].y <= threshold) {
        first_hit = t + 1;
        break;
      }
    }
    std::cout << first_hit << '\n';
  };

  std::cout << "tuning the target with " << kBudget << " evaluations ("
            << 100.0 * kBudget / static_cast<double>(pair.target.size())
            << "% of the space):\n";
  run(/*with_prior=*/false);
  run(/*with_prior=*/true);

  std::cout << "\nThe prior steers the very first model-based suggestions "
               "into the region the source study found promising, instead of "
               "re-discovering it from expensive target runs.\n";
  return 0;
}
