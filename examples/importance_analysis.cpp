// Parameter-importance analysis (§VI): rank LULESH's eleven compiler flags
// by the JS divergence between their good- and bad-configuration densities,
// first from a small tuning run (what a user would actually have), then
// from the full dataset (ground truth).
//
// Build & run:  ./build/examples/importance_analysis
#include <iomanip>
#include <iostream>

#include "apps/lulesh.hpp"
#include "core/hiperbot.hpp"
#include "core/importance.hpp"
#include "core/loop.hpp"

namespace {

void print_ranking(const std::vector<hpb::core::ImportanceEntry>& entries) {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    std::cout << "  " << std::left << std::setw(4) << (i + 1) << std::setw(12)
              << entries[i].parameter << std::fixed << std::setprecision(3)
              << entries[i].js_divergence << '\n';
  }
}

}  // namespace

int main() {
  auto dataset = hpb::apps::make_lulesh();
  std::cout << "LULESH compiler-flag dataset: " << dataset.size()
            << " configurations, " << dataset.space().num_params()
            << " flags\n"
            << "-O3 default: 6.02 s, best: " << dataset.best_value()
            << " s\n\n";

  // A short HiPerBOt run — 200 evaluations, under 4% of the space.
  hpb::core::HiPerBOtConfig config;
  hpb::core::HiPerBOt tuner(dataset.space_ptr(), config, 123);
  (void)hpb::core::run_tuning(tuner, dataset, 200);

  std::vector<hpb::space::Configuration> configs;
  std::vector<double> values;
  for (const auto& obs : tuner.history().observations()) {
    configs.push_back(obs.config);
    values.push_back(obs.y);
  }
  std::cout << "ranking from the 200-sample tuning run:\n";
  print_ranking(hpb::core::parameter_importance(
      dataset.space_ptr(), configs, values, config.quantile));

  std::cout << "\nground-truth ranking from all " << dataset.size()
            << " configurations:\n";
  print_ranking(hpb::core::dataset_importance(dataset, config.quantile));

  std::cout << "\nFlags whose good/bad value distributions differ the most "
               "are the ones worth a user's attention; ~0.000 means the flag "
               "barely matters (compare Table I in the paper).\n";
  return 0;
}
