# Empty compiler generated dependencies file for hiperbot.
# This may be replaced when dependencies are built.
