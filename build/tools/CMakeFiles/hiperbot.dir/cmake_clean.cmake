file(REMOVE_RECURSE
  "CMakeFiles/hiperbot.dir/hiperbot_cli.cpp.o"
  "CMakeFiles/hiperbot.dir/hiperbot_cli.cpp.o.d"
  "hiperbot"
  "hiperbot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hiperbot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
