# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_usage "/root/repo/build/tools/hiperbot")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_info "/root/repo/build/tools/hiperbot" "info" "--dataset" "kripke")
set_tests_properties(cli_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_tune "/root/repo/build/tools/hiperbot" "tune" "--dataset" "kripke" "--budget" "40" "--patience" "20")
set_tests_properties(cli_tune PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_importance "/root/repo/build/tools/hiperbot" "importance" "--dataset" "lulesh")
set_tests_properties(cli_importance PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compare "/root/repo/build/tools/hiperbot" "compare" "--dataset" "kripke" "--budget" "40" "--reps" "2" "--methods" "hiperbot,random")
set_tests_properties(cli_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_dataset "/root/repo/build/tools/hiperbot" "info" "--dataset" "bogus")
set_tests_properties(cli_unknown_dataset PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_unknown_command "/root/repo/build/tools/hiperbot" "frobnicate" "--dataset" "kripke")
set_tests_properties(cli_unknown_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
