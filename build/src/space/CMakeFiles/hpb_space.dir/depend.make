# Empty dependencies file for hpb_space.
# This may be replaced when dependencies are built.
