
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/space/parameter.cpp" "src/space/CMakeFiles/hpb_space.dir/parameter.cpp.o" "gcc" "src/space/CMakeFiles/hpb_space.dir/parameter.cpp.o.d"
  "/root/repo/src/space/parameter_space.cpp" "src/space/CMakeFiles/hpb_space.dir/parameter_space.cpp.o" "gcc" "src/space/CMakeFiles/hpb_space.dir/parameter_space.cpp.o.d"
  "/root/repo/src/space/sampling.cpp" "src/space/CMakeFiles/hpb_space.dir/sampling.cpp.o" "gcc" "src/space/CMakeFiles/hpb_space.dir/sampling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hpb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
