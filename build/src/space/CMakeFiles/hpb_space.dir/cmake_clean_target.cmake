file(REMOVE_RECURSE
  "libhpb_space.a"
)
