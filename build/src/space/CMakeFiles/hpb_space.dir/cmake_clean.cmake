file(REMOVE_RECURSE
  "CMakeFiles/hpb_space.dir/parameter.cpp.o"
  "CMakeFiles/hpb_space.dir/parameter.cpp.o.d"
  "CMakeFiles/hpb_space.dir/parameter_space.cpp.o"
  "CMakeFiles/hpb_space.dir/parameter_space.cpp.o.d"
  "CMakeFiles/hpb_space.dir/sampling.cpp.o"
  "CMakeFiles/hpb_space.dir/sampling.cpp.o.d"
  "libhpb_space.a"
  "libhpb_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpb_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
