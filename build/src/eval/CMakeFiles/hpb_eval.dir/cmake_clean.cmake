file(REMOVE_RECURSE
  "CMakeFiles/hpb_eval.dir/experiment.cpp.o"
  "CMakeFiles/hpb_eval.dir/experiment.cpp.o.d"
  "CMakeFiles/hpb_eval.dir/methods.cpp.o"
  "CMakeFiles/hpb_eval.dir/methods.cpp.o.d"
  "CMakeFiles/hpb_eval.dir/metrics.cpp.o"
  "CMakeFiles/hpb_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/hpb_eval.dir/pareto.cpp.o"
  "CMakeFiles/hpb_eval.dir/pareto.cpp.o.d"
  "CMakeFiles/hpb_eval.dir/report.cpp.o"
  "CMakeFiles/hpb_eval.dir/report.cpp.o.d"
  "libhpb_eval.a"
  "libhpb_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpb_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
