# Empty dependencies file for hpb_eval.
# This may be replaced when dependencies are built.
