file(REMOVE_RECURSE
  "libhpb_eval.a"
)
