file(REMOVE_RECURSE
  "CMakeFiles/hpb_stats.dir/divergence.cpp.o"
  "CMakeFiles/hpb_stats.dir/divergence.cpp.o.d"
  "CMakeFiles/hpb_stats.dir/histogram.cpp.o"
  "CMakeFiles/hpb_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/hpb_stats.dir/inference.cpp.o"
  "CMakeFiles/hpb_stats.dir/inference.cpp.o.d"
  "CMakeFiles/hpb_stats.dir/kde.cpp.o"
  "CMakeFiles/hpb_stats.dir/kde.cpp.o.d"
  "CMakeFiles/hpb_stats.dir/quantile.cpp.o"
  "CMakeFiles/hpb_stats.dir/quantile.cpp.o.d"
  "CMakeFiles/hpb_stats.dir/summary.cpp.o"
  "CMakeFiles/hpb_stats.dir/summary.cpp.o.d"
  "libhpb_stats.a"
  "libhpb_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpb_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
