file(REMOVE_RECURSE
  "libhpb_stats.a"
)
