# Empty dependencies file for hpb_stats.
# This may be replaced when dependencies are built.
