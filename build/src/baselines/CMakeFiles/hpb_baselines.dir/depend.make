# Empty dependencies file for hpb_baselines.
# This may be replaced when dependencies are built.
