file(REMOVE_RECURSE
  "libhpb_baselines.a"
)
