file(REMOVE_RECURSE
  "CMakeFiles/hpb_baselines.dir/boosted_trees.cpp.o"
  "CMakeFiles/hpb_baselines.dir/boosted_trees.cpp.o.d"
  "CMakeFiles/hpb_baselines.dir/camlp.cpp.o"
  "CMakeFiles/hpb_baselines.dir/camlp.cpp.o.d"
  "CMakeFiles/hpb_baselines.dir/config_graph.cpp.o"
  "CMakeFiles/hpb_baselines.dir/config_graph.cpp.o.d"
  "CMakeFiles/hpb_baselines.dir/geist.cpp.o"
  "CMakeFiles/hpb_baselines.dir/geist.cpp.o.d"
  "CMakeFiles/hpb_baselines.dir/gp_tuner.cpp.o"
  "CMakeFiles/hpb_baselines.dir/gp_tuner.cpp.o.d"
  "CMakeFiles/hpb_baselines.dir/local_search.cpp.o"
  "CMakeFiles/hpb_baselines.dir/local_search.cpp.o.d"
  "CMakeFiles/hpb_baselines.dir/perfnet.cpp.o"
  "CMakeFiles/hpb_baselines.dir/perfnet.cpp.o.d"
  "CMakeFiles/hpb_baselines.dir/random_search.cpp.o"
  "CMakeFiles/hpb_baselines.dir/random_search.cpp.o.d"
  "CMakeFiles/hpb_baselines.dir/ridge_tuner.cpp.o"
  "CMakeFiles/hpb_baselines.dir/ridge_tuner.cpp.o.d"
  "libhpb_baselines.a"
  "libhpb_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpb_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
