
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/boosted_trees.cpp" "src/baselines/CMakeFiles/hpb_baselines.dir/boosted_trees.cpp.o" "gcc" "src/baselines/CMakeFiles/hpb_baselines.dir/boosted_trees.cpp.o.d"
  "/root/repo/src/baselines/camlp.cpp" "src/baselines/CMakeFiles/hpb_baselines.dir/camlp.cpp.o" "gcc" "src/baselines/CMakeFiles/hpb_baselines.dir/camlp.cpp.o.d"
  "/root/repo/src/baselines/config_graph.cpp" "src/baselines/CMakeFiles/hpb_baselines.dir/config_graph.cpp.o" "gcc" "src/baselines/CMakeFiles/hpb_baselines.dir/config_graph.cpp.o.d"
  "/root/repo/src/baselines/geist.cpp" "src/baselines/CMakeFiles/hpb_baselines.dir/geist.cpp.o" "gcc" "src/baselines/CMakeFiles/hpb_baselines.dir/geist.cpp.o.d"
  "/root/repo/src/baselines/gp_tuner.cpp" "src/baselines/CMakeFiles/hpb_baselines.dir/gp_tuner.cpp.o" "gcc" "src/baselines/CMakeFiles/hpb_baselines.dir/gp_tuner.cpp.o.d"
  "/root/repo/src/baselines/local_search.cpp" "src/baselines/CMakeFiles/hpb_baselines.dir/local_search.cpp.o" "gcc" "src/baselines/CMakeFiles/hpb_baselines.dir/local_search.cpp.o.d"
  "/root/repo/src/baselines/perfnet.cpp" "src/baselines/CMakeFiles/hpb_baselines.dir/perfnet.cpp.o" "gcc" "src/baselines/CMakeFiles/hpb_baselines.dir/perfnet.cpp.o.d"
  "/root/repo/src/baselines/random_search.cpp" "src/baselines/CMakeFiles/hpb_baselines.dir/random_search.cpp.o" "gcc" "src/baselines/CMakeFiles/hpb_baselines.dir/random_search.cpp.o.d"
  "/root/repo/src/baselines/ridge_tuner.cpp" "src/baselines/CMakeFiles/hpb_baselines.dir/ridge_tuner.cpp.o" "gcc" "src/baselines/CMakeFiles/hpb_baselines.dir/ridge_tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hpb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hpb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hpb_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hpb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/space/CMakeFiles/hpb_space.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tabular/CMakeFiles/hpb_tabular.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
