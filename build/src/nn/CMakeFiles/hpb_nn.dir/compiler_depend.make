# Empty compiler generated dependencies file for hpb_nn.
# This may be replaced when dependencies are built.
