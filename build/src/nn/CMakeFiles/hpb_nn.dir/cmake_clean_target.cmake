file(REMOVE_RECURSE
  "libhpb_nn.a"
)
