file(REMOVE_RECURSE
  "CMakeFiles/hpb_nn.dir/mlp.cpp.o"
  "CMakeFiles/hpb_nn.dir/mlp.cpp.o.d"
  "libhpb_nn.a"
  "libhpb_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpb_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
