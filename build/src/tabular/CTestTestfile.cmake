# CMake generated Testfile for 
# Source directory: /root/repo/src/tabular
# Build directory: /root/repo/build/src/tabular
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
