file(REMOVE_RECURSE
  "CMakeFiles/hpb_tabular.dir/csv.cpp.o"
  "CMakeFiles/hpb_tabular.dir/csv.cpp.o.d"
  "CMakeFiles/hpb_tabular.dir/tabular_objective.cpp.o"
  "CMakeFiles/hpb_tabular.dir/tabular_objective.cpp.o.d"
  "libhpb_tabular.a"
  "libhpb_tabular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpb_tabular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
