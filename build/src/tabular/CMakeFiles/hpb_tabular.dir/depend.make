# Empty dependencies file for hpb_tabular.
# This may be replaced when dependencies are built.
