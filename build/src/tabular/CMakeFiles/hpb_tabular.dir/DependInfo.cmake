
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tabular/csv.cpp" "src/tabular/CMakeFiles/hpb_tabular.dir/csv.cpp.o" "gcc" "src/tabular/CMakeFiles/hpb_tabular.dir/csv.cpp.o.d"
  "/root/repo/src/tabular/tabular_objective.cpp" "src/tabular/CMakeFiles/hpb_tabular.dir/tabular_objective.cpp.o" "gcc" "src/tabular/CMakeFiles/hpb_tabular.dir/tabular_objective.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hpb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/space/CMakeFiles/hpb_space.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpb_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
