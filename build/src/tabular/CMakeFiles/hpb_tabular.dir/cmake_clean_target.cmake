file(REMOVE_RECURSE
  "libhpb_tabular.a"
)
