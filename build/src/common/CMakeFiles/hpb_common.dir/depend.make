# Empty dependencies file for hpb_common.
# This may be replaced when dependencies are built.
