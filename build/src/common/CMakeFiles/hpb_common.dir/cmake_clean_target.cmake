file(REMOVE_RECURSE
  "libhpb_common.a"
)
