file(REMOVE_RECURSE
  "CMakeFiles/hpb_common.dir/cli.cpp.o"
  "CMakeFiles/hpb_common.dir/cli.cpp.o.d"
  "CMakeFiles/hpb_common.dir/error.cpp.o"
  "CMakeFiles/hpb_common.dir/error.cpp.o.d"
  "CMakeFiles/hpb_common.dir/rng.cpp.o"
  "CMakeFiles/hpb_common.dir/rng.cpp.o.d"
  "CMakeFiles/hpb_common.dir/thread_pool.cpp.o"
  "CMakeFiles/hpb_common.dir/thread_pool.cpp.o.d"
  "libhpb_common.a"
  "libhpb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
