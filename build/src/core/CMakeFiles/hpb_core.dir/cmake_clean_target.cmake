file(REMOVE_RECURSE
  "libhpb_core.a"
)
