# Empty compiler generated dependencies file for hpb_core.
# This may be replaced when dependencies are built.
