file(REMOVE_RECURSE
  "CMakeFiles/hpb_core.dir/density.cpp.o"
  "CMakeFiles/hpb_core.dir/density.cpp.o.d"
  "CMakeFiles/hpb_core.dir/hiperbot.cpp.o"
  "CMakeFiles/hpb_core.dir/hiperbot.cpp.o.d"
  "CMakeFiles/hpb_core.dir/history.cpp.o"
  "CMakeFiles/hpb_core.dir/history.cpp.o.d"
  "CMakeFiles/hpb_core.dir/history_io.cpp.o"
  "CMakeFiles/hpb_core.dir/history_io.cpp.o.d"
  "CMakeFiles/hpb_core.dir/importance.cpp.o"
  "CMakeFiles/hpb_core.dir/importance.cpp.o.d"
  "CMakeFiles/hpb_core.dir/loop.cpp.o"
  "CMakeFiles/hpb_core.dir/loop.cpp.o.d"
  "CMakeFiles/hpb_core.dir/stopping.cpp.o"
  "CMakeFiles/hpb_core.dir/stopping.cpp.o.d"
  "CMakeFiles/hpb_core.dir/surrogate.cpp.o"
  "CMakeFiles/hpb_core.dir/surrogate.cpp.o.d"
  "libhpb_core.a"
  "libhpb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
