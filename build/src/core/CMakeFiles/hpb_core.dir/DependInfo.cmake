
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/density.cpp" "src/core/CMakeFiles/hpb_core.dir/density.cpp.o" "gcc" "src/core/CMakeFiles/hpb_core.dir/density.cpp.o.d"
  "/root/repo/src/core/hiperbot.cpp" "src/core/CMakeFiles/hpb_core.dir/hiperbot.cpp.o" "gcc" "src/core/CMakeFiles/hpb_core.dir/hiperbot.cpp.o.d"
  "/root/repo/src/core/history.cpp" "src/core/CMakeFiles/hpb_core.dir/history.cpp.o" "gcc" "src/core/CMakeFiles/hpb_core.dir/history.cpp.o.d"
  "/root/repo/src/core/history_io.cpp" "src/core/CMakeFiles/hpb_core.dir/history_io.cpp.o" "gcc" "src/core/CMakeFiles/hpb_core.dir/history_io.cpp.o.d"
  "/root/repo/src/core/importance.cpp" "src/core/CMakeFiles/hpb_core.dir/importance.cpp.o" "gcc" "src/core/CMakeFiles/hpb_core.dir/importance.cpp.o.d"
  "/root/repo/src/core/loop.cpp" "src/core/CMakeFiles/hpb_core.dir/loop.cpp.o" "gcc" "src/core/CMakeFiles/hpb_core.dir/loop.cpp.o.d"
  "/root/repo/src/core/stopping.cpp" "src/core/CMakeFiles/hpb_core.dir/stopping.cpp.o" "gcc" "src/core/CMakeFiles/hpb_core.dir/stopping.cpp.o.d"
  "/root/repo/src/core/surrogate.cpp" "src/core/CMakeFiles/hpb_core.dir/surrogate.cpp.o" "gcc" "src/core/CMakeFiles/hpb_core.dir/surrogate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hpb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/space/CMakeFiles/hpb_space.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tabular/CMakeFiles/hpb_tabular.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
