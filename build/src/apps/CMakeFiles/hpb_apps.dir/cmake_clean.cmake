file(REMOVE_RECURSE
  "CMakeFiles/hpb_apps.dir/hypre.cpp.o"
  "CMakeFiles/hpb_apps.dir/hypre.cpp.o.d"
  "CMakeFiles/hpb_apps.dir/kripke.cpp.o"
  "CMakeFiles/hpb_apps.dir/kripke.cpp.o.d"
  "CMakeFiles/hpb_apps.dir/lulesh.cpp.o"
  "CMakeFiles/hpb_apps.dir/lulesh.cpp.o.d"
  "CMakeFiles/hpb_apps.dir/minisolver.cpp.o"
  "CMakeFiles/hpb_apps.dir/minisolver.cpp.o.d"
  "CMakeFiles/hpb_apps.dir/minisweep.cpp.o"
  "CMakeFiles/hpb_apps.dir/minisweep.cpp.o.d"
  "CMakeFiles/hpb_apps.dir/openatom.cpp.o"
  "CMakeFiles/hpb_apps.dir/openatom.cpp.o.d"
  "CMakeFiles/hpb_apps.dir/registry.cpp.o"
  "CMakeFiles/hpb_apps.dir/registry.cpp.o.d"
  "CMakeFiles/hpb_apps.dir/stencil.cpp.o"
  "CMakeFiles/hpb_apps.dir/stencil.cpp.o.d"
  "CMakeFiles/hpb_apps.dir/transfer.cpp.o"
  "CMakeFiles/hpb_apps.dir/transfer.cpp.o.d"
  "libhpb_apps.a"
  "libhpb_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpb_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
