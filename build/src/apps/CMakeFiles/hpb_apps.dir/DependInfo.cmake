
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/hypre.cpp" "src/apps/CMakeFiles/hpb_apps.dir/hypre.cpp.o" "gcc" "src/apps/CMakeFiles/hpb_apps.dir/hypre.cpp.o.d"
  "/root/repo/src/apps/kripke.cpp" "src/apps/CMakeFiles/hpb_apps.dir/kripke.cpp.o" "gcc" "src/apps/CMakeFiles/hpb_apps.dir/kripke.cpp.o.d"
  "/root/repo/src/apps/lulesh.cpp" "src/apps/CMakeFiles/hpb_apps.dir/lulesh.cpp.o" "gcc" "src/apps/CMakeFiles/hpb_apps.dir/lulesh.cpp.o.d"
  "/root/repo/src/apps/minisolver.cpp" "src/apps/CMakeFiles/hpb_apps.dir/minisolver.cpp.o" "gcc" "src/apps/CMakeFiles/hpb_apps.dir/minisolver.cpp.o.d"
  "/root/repo/src/apps/minisweep.cpp" "src/apps/CMakeFiles/hpb_apps.dir/minisweep.cpp.o" "gcc" "src/apps/CMakeFiles/hpb_apps.dir/minisweep.cpp.o.d"
  "/root/repo/src/apps/openatom.cpp" "src/apps/CMakeFiles/hpb_apps.dir/openatom.cpp.o" "gcc" "src/apps/CMakeFiles/hpb_apps.dir/openatom.cpp.o.d"
  "/root/repo/src/apps/registry.cpp" "src/apps/CMakeFiles/hpb_apps.dir/registry.cpp.o" "gcc" "src/apps/CMakeFiles/hpb_apps.dir/registry.cpp.o.d"
  "/root/repo/src/apps/stencil.cpp" "src/apps/CMakeFiles/hpb_apps.dir/stencil.cpp.o" "gcc" "src/apps/CMakeFiles/hpb_apps.dir/stencil.cpp.o.d"
  "/root/repo/src/apps/transfer.cpp" "src/apps/CMakeFiles/hpb_apps.dir/transfer.cpp.o" "gcc" "src/apps/CMakeFiles/hpb_apps.dir/transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hpb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/space/CMakeFiles/hpb_space.dir/DependInfo.cmake"
  "/root/repo/build/src/surface/CMakeFiles/hpb_surface.dir/DependInfo.cmake"
  "/root/repo/build/src/tabular/CMakeFiles/hpb_tabular.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpb_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
