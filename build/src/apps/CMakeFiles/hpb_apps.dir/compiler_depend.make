# Empty compiler generated dependencies file for hpb_apps.
# This may be replaced when dependencies are built.
