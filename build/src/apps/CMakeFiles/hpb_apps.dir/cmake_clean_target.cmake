file(REMOVE_RECURSE
  "libhpb_apps.a"
)
