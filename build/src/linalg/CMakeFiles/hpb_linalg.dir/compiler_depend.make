# Empty compiler generated dependencies file for hpb_linalg.
# This may be replaced when dependencies are built.
