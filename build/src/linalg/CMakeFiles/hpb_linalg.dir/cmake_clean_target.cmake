file(REMOVE_RECURSE
  "libhpb_linalg.a"
)
