file(REMOVE_RECURSE
  "CMakeFiles/hpb_linalg.dir/matrix.cpp.o"
  "CMakeFiles/hpb_linalg.dir/matrix.cpp.o.d"
  "libhpb_linalg.a"
  "libhpb_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpb_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
