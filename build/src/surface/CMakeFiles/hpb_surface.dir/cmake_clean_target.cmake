file(REMOVE_RECURSE
  "libhpb_surface.a"
)
