
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/surface/surface.cpp" "src/surface/CMakeFiles/hpb_surface.dir/surface.cpp.o" "gcc" "src/surface/CMakeFiles/hpb_surface.dir/surface.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hpb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/space/CMakeFiles/hpb_space.dir/DependInfo.cmake"
  "/root/repo/build/src/tabular/CMakeFiles/hpb_tabular.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpb_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
