# Empty dependencies file for hpb_surface.
# This may be replaced when dependencies are built.
