file(REMOVE_RECURSE
  "CMakeFiles/hpb_surface.dir/surface.cpp.o"
  "CMakeFiles/hpb_surface.dir/surface.cpp.o.d"
  "libhpb_surface.a"
  "libhpb_surface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpb_surface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
