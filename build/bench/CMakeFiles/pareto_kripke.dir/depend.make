# Empty dependencies file for pareto_kripke.
# This may be replaced when dependencies are built.
