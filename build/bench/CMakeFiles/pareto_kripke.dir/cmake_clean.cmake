file(REMOVE_RECURSE
  "CMakeFiles/pareto_kripke.dir/pareto_kripke.cpp.o"
  "CMakeFiles/pareto_kripke.dir/pareto_kripke.cpp.o.d"
  "pareto_kripke"
  "pareto_kripke.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pareto_kripke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
