# Empty compiler generated dependencies file for fig5_lulesh.
# This may be replaced when dependencies are built.
