file(REMOVE_RECURSE
  "CMakeFiles/fig5_lulesh.dir/fig5_lulesh.cpp.o"
  "CMakeFiles/fig5_lulesh.dir/fig5_lulesh.cpp.o.d"
  "fig5_lulesh"
  "fig5_lulesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_lulesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
