file(REMOVE_RECURSE
  "CMakeFiles/micro_surrogate.dir/micro_surrogate.cpp.o"
  "CMakeFiles/micro_surrogate.dir/micro_surrogate.cpp.o.d"
  "micro_surrogate"
  "micro_surrogate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_surrogate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
