# Empty compiler generated dependencies file for micro_surrogate.
# This may be replaced when dependencies are built.
