file(REMOVE_RECURSE
  "CMakeFiles/fig8_transfer.dir/fig8_transfer.cpp.o"
  "CMakeFiles/fig8_transfer.dir/fig8_transfer.cpp.o.d"
  "fig8_transfer"
  "fig8_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
