# Empty dependencies file for fig8_transfer.
# This may be replaced when dependencies are built.
