file(REMOVE_RECURSE
  "CMakeFiles/fig1_toy.dir/fig1_toy.cpp.o"
  "CMakeFiles/fig1_toy.dir/fig1_toy.cpp.o.d"
  "fig1_toy"
  "fig1_toy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_toy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
