# Empty compiler generated dependencies file for fig1_toy.
# This may be replaced when dependencies are built.
