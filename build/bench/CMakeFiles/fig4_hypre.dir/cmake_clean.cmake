file(REMOVE_RECURSE
  "CMakeFiles/fig4_hypre.dir/fig4_hypre.cpp.o"
  "CMakeFiles/fig4_hypre.dir/fig4_hypre.cpp.o.d"
  "fig4_hypre"
  "fig4_hypre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_hypre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
