# Empty dependencies file for fig4_hypre.
# This may be replaced when dependencies are built.
