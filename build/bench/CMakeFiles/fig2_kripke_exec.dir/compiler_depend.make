# Empty compiler generated dependencies file for fig2_kripke_exec.
# This may be replaced when dependencies are built.
