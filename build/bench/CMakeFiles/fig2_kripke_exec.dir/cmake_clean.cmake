file(REMOVE_RECURSE
  "CMakeFiles/fig2_kripke_exec.dir/fig2_kripke_exec.cpp.o"
  "CMakeFiles/fig2_kripke_exec.dir/fig2_kripke_exec.cpp.o.d"
  "fig2_kripke_exec"
  "fig2_kripke_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_kripke_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
