# Empty dependencies file for table1_importance.
# This may be replaced when dependencies are built.
