file(REMOVE_RECURSE
  "CMakeFiles/table1_importance.dir/table1_importance.cpp.o"
  "CMakeFiles/table1_importance.dir/table1_importance.cpp.o.d"
  "table1_importance"
  "table1_importance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_importance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
