file(REMOVE_RECURSE
  "CMakeFiles/ablation_transfer_weight.dir/ablation_transfer_weight.cpp.o"
  "CMakeFiles/ablation_transfer_weight.dir/ablation_transfer_weight.cpp.o.d"
  "ablation_transfer_weight"
  "ablation_transfer_weight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_transfer_weight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
