# Empty compiler generated dependencies file for ablation_transfer_weight.
# This may be replaced when dependencies are built.
