file(REMOVE_RECURSE
  "../lib/libhpb_benchfig.a"
)
