# Empty dependencies file for hpb_benchfig.
# This may be replaced when dependencies are built.
