file(REMOVE_RECURSE
  "../lib/libhpb_benchfig.a"
  "../lib/libhpb_benchfig.pdb"
  "CMakeFiles/hpb_benchfig.dir/figure_common.cpp.o"
  "CMakeFiles/hpb_benchfig.dir/figure_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpb_benchfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
