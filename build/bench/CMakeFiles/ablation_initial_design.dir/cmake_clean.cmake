file(REMOVE_RECURSE
  "CMakeFiles/ablation_initial_design.dir/ablation_initial_design.cpp.o"
  "CMakeFiles/ablation_initial_design.dir/ablation_initial_design.cpp.o.d"
  "ablation_initial_design"
  "ablation_initial_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_initial_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
