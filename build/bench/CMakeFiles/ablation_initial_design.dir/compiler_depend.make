# Empty compiler generated dependencies file for ablation_initial_design.
# This may be replaced when dependencies are built.
