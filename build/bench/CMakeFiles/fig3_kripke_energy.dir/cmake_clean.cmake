file(REMOVE_RECURSE
  "CMakeFiles/fig3_kripke_energy.dir/fig3_kripke_energy.cpp.o"
  "CMakeFiles/fig3_kripke_energy.dir/fig3_kripke_energy.cpp.o.d"
  "fig3_kripke_energy"
  "fig3_kripke_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_kripke_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
