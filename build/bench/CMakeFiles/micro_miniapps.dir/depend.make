# Empty dependencies file for micro_miniapps.
# This may be replaced when dependencies are built.
