file(REMOVE_RECURSE
  "CMakeFiles/micro_miniapps.dir/micro_miniapps.cpp.o"
  "CMakeFiles/micro_miniapps.dir/micro_miniapps.cpp.o.d"
  "micro_miniapps"
  "micro_miniapps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_miniapps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
