# Empty dependencies file for fig6_openatom.
# This may be replaced when dependencies are built.
