file(REMOVE_RECURSE
  "CMakeFiles/fig6_openatom.dir/fig6_openatom.cpp.o"
  "CMakeFiles/fig6_openatom.dir/fig6_openatom.cpp.o.d"
  "fig6_openatom"
  "fig6_openatom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_openatom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
