# Empty dependencies file for ablation_gp.
# This may be replaced when dependencies are built.
