file(REMOVE_RECURSE
  "CMakeFiles/ablation_gp.dir/ablation_gp.cpp.o"
  "CMakeFiles/ablation_gp.dir/ablation_gp.cpp.o.d"
  "ablation_gp"
  "ablation_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
