# Empty compiler generated dependencies file for fig7_sensitivity.
# This may be replaced when dependencies are built.
