file(REMOVE_RECURSE
  "CMakeFiles/tune_kripke_sim.dir/tune_kripke_sim.cpp.o"
  "CMakeFiles/tune_kripke_sim.dir/tune_kripke_sim.cpp.o.d"
  "tune_kripke_sim"
  "tune_kripke_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_kripke_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
