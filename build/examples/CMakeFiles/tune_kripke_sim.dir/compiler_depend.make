# Empty compiler generated dependencies file for tune_kripke_sim.
# This may be replaced when dependencies are built.
