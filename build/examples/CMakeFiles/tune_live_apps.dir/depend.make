# Empty dependencies file for tune_live_apps.
# This may be replaced when dependencies are built.
