file(REMOVE_RECURSE
  "CMakeFiles/tune_live_apps.dir/tune_live_apps.cpp.o"
  "CMakeFiles/tune_live_apps.dir/tune_live_apps.cpp.o.d"
  "tune_live_apps"
  "tune_live_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_live_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
