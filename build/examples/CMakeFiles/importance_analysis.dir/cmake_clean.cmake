file(REMOVE_RECURSE
  "CMakeFiles/importance_analysis.dir/importance_analysis.cpp.o"
  "CMakeFiles/importance_analysis.dir/importance_analysis.cpp.o.d"
  "importance_analysis"
  "importance_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/importance_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
