# Empty dependencies file for importance_analysis.
# This may be replaced when dependencies are built.
