# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_space[1]_include.cmake")
include("/root/repo/build/tests/test_tabular[1]_include.cmake")
include("/root/repo/build/tests/test_surface[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_hiperbot[1]_include.cmake")
include("/root/repo/build/tests/test_graph_camlp[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_mlp[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_transfer[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_stencil[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_inference[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_local_search[1]_include.cmake")
include("/root/repo/build/tests/test_boosted_trees[1]_include.cmake")
include("/root/repo/build/tests/test_csv_cli[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_miniapps[1]_include.cmake")
include("/root/repo/build/tests/test_parallel_pareto[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_spaces[1]_include.cmake")
include("/root/repo/build/tests/test_ridge[1]_include.cmake")
