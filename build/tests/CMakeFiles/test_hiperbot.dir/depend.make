# Empty dependencies file for test_hiperbot.
# This may be replaced when dependencies are built.
