file(REMOVE_RECURSE
  "CMakeFiles/test_hiperbot.dir/test_hiperbot.cpp.o"
  "CMakeFiles/test_hiperbot.dir/test_hiperbot.cpp.o.d"
  "test_hiperbot"
  "test_hiperbot.pdb"
  "test_hiperbot[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hiperbot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
