# Empty compiler generated dependencies file for test_boosted_trees.
# This may be replaced when dependencies are built.
