file(REMOVE_RECURSE
  "CMakeFiles/test_boosted_trees.dir/test_boosted_trees.cpp.o"
  "CMakeFiles/test_boosted_trees.dir/test_boosted_trees.cpp.o.d"
  "test_boosted_trees"
  "test_boosted_trees.pdb"
  "test_boosted_trees[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_boosted_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
