
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/test_integration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/hpb_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/hpb_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hpb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/hpb_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/hpb_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hpb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/space/CMakeFiles/hpb_space.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/surface/CMakeFiles/hpb_surface.dir/DependInfo.cmake"
  "/root/repo/build/src/tabular/CMakeFiles/hpb_tabular.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hpb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
