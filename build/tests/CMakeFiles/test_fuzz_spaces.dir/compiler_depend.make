# Empty compiler generated dependencies file for test_fuzz_spaces.
# This may be replaced when dependencies are built.
