file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_spaces.dir/test_fuzz_spaces.cpp.o"
  "CMakeFiles/test_fuzz_spaces.dir/test_fuzz_spaces.cpp.o.d"
  "test_fuzz_spaces"
  "test_fuzz_spaces.pdb"
  "test_fuzz_spaces[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_spaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
