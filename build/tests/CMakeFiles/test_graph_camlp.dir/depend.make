# Empty dependencies file for test_graph_camlp.
# This may be replaced when dependencies are built.
