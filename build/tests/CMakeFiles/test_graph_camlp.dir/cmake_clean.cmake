file(REMOVE_RECURSE
  "CMakeFiles/test_graph_camlp.dir/test_graph_camlp.cpp.o"
  "CMakeFiles/test_graph_camlp.dir/test_graph_camlp.cpp.o.d"
  "test_graph_camlp"
  "test_graph_camlp.pdb"
  "test_graph_camlp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_camlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
