file(REMOVE_RECURSE
  "CMakeFiles/test_parallel_pareto.dir/test_parallel_pareto.cpp.o"
  "CMakeFiles/test_parallel_pareto.dir/test_parallel_pareto.cpp.o.d"
  "test_parallel_pareto"
  "test_parallel_pareto.pdb"
  "test_parallel_pareto[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallel_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
