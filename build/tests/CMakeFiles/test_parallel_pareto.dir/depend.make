# Empty dependencies file for test_parallel_pareto.
# This may be replaced when dependencies are built.
