# Empty dependencies file for test_tabular.
# This may be replaced when dependencies are built.
