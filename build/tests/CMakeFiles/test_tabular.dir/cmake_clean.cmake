file(REMOVE_RECURSE
  "CMakeFiles/test_tabular.dir/test_tabular.cpp.o"
  "CMakeFiles/test_tabular.dir/test_tabular.cpp.o.d"
  "test_tabular"
  "test_tabular.pdb"
  "test_tabular[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tabular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
